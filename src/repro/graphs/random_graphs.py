"""Seeded random graph families (thin wrappers over networkx).

All generators relabel to identifiers ``1..n`` and return
:class:`~repro.graphs.graph.DistGraph` instances; every generator takes an
explicit seed so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from typing import Dict, List

import networkx as nx

from repro.graphs.graph import DistGraph


def _from_nx_zero_based(nx_graph, name: str) -> DistGraph:
    adjacency: Dict[int, List[int]] = {
        int(node) + 1: [int(other) + 1 for other in nx_graph.neighbors(node)]
        for node in nx_graph.nodes
    }
    return DistGraph(adjacency, name=name)


def erdos_renyi(n: int, p: float, seed: int = 0) -> DistGraph:
    """An Erdős–Rényi ``G(n, p)`` graph with ids ``1..n``."""
    nx_graph = nx.gnp_random_graph(n, p, seed=seed)
    return _from_nx_zero_based(nx_graph, name=f"gnp-{n}-{p}-s{seed}")


def connected_erdos_renyi(n: int, p: float, seed: int = 0) -> DistGraph:
    """A connected ``G(n, p)`` sample.

    Sampled as ``G(n, p)`` and then patched into one component by linking
    consecutive components with a single random edge each (the standard
    trick for connected benchmark instances; the patch adds at most
    ``#components - 1`` edges).
    """
    nx_graph = nx.gnp_random_graph(n, p, seed=seed)
    rng = random.Random(f"{seed}:connect")
    components = [sorted(c) for c in nx.connected_components(nx_graph)]
    for previous, current in zip(components, components[1:]):
        nx_graph.add_edge(rng.choice(previous), rng.choice(current))
    return _from_nx_zero_based(nx_graph, name=f"gnp-conn-{n}-{p}-s{seed}")


def random_regular(n: int, degree: int, seed: int = 0) -> DistGraph:
    """A random ``degree``-regular graph with ids ``1..n``."""
    nx_graph = nx.random_regular_graph(degree, n, seed=seed)
    return _from_nx_zero_based(nx_graph, name=f"reg-{n}-{degree}-s{seed}")


def barabasi_albert(n: int, m: int, seed: int = 0) -> DistGraph:
    """A Barabási–Albert preferential-attachment graph with ids ``1..n``."""
    nx_graph = nx.barabasi_albert_graph(n, m, seed=seed)
    return _from_nx_zero_based(nx_graph, name=f"ba-{n}-{m}-s{seed}")


def random_tree(n: int, seed: int = 0) -> DistGraph:
    """A uniformly random (unrooted) tree with ids ``1..n``."""
    if n == 1:
        return DistGraph({1: []}, name=f"tree-1-s{seed}")
    # Sample a Prüfer sequence directly: uniform over labelled trees and
    # independent of networkx version differences.
    rng = random.Random(f"{seed}:tree")
    sequence = [rng.randrange(n) for _ in range(n - 2)]
    degree = [1] * n
    for value in sequence:
        degree[value] += 1
    adjacency: Dict[int, List[int]] = {v: [] for v in range(1, n + 1)}
    import heapq

    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for value in sequence:
        leaf = heapq.heappop(leaves)
        adjacency[leaf + 1].append(value + 1)
        degree[value] -= 1
        if degree[value] == 1:
            heapq.heappush(leaves, value)
    # After consuming the sequence exactly two nodes of residual degree 1
    # remain in the heap; join them.
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    adjacency[u + 1].append(v + 1)
    return DistGraph(adjacency, name=f"tree-{n}-s{seed}")
