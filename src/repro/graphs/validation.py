"""Instance validation.

Checks that a :class:`~repro.graphs.graph.DistGraph` is a well-formed
instance of the paper's model: distinct positive identifiers bounded by
``d``, symmetric adjacency without self-loops, and (for rooted instances)
consistent parent pointers.
"""

from __future__ import annotations

from typing import List

from repro.graphs.graph import DistGraph


def validate_instance(graph: DistGraph, rooted: bool = False) -> List[str]:
    """Return a list of problems (empty when the instance is valid)."""
    problems: List[str] = []
    seen = set()
    for node in graph.nodes:
        if node < 1:
            problems.append(f"node id {node} is not positive")
        if node > graph.d:
            problems.append(f"node id {node} exceeds d={graph.d}")
        if node in seen:
            problems.append(f"duplicate node id {node}")
        seen.add(node)
        for other in graph.neighbors(node):
            if other == node:
                problems.append(f"self-loop at {node}")
            if node not in graph.neighbors(other):
                problems.append(f"asymmetric edge ({node}, {other})")

    if rooted:
        problems.extend(_validate_rooted(graph))
    return problems


def _validate_rooted(graph: DistGraph) -> List[str]:
    problems: List[str] = []
    for component in graph.components():
        roots = [
            node for node in component if graph.node_attrs(node).get("is_root")
        ]
        if len(roots) != 1:
            problems.append(
                f"component {sorted(component)[:5]}... has {len(roots)} roots"
            )
    for node in graph.nodes:
        attrs = graph.node_attrs(node)
        if "parent" not in attrs and "is_root" not in attrs:
            problems.append(f"node {node} lacks rooted-tree attributes")
            continue
        parent = attrs.get("parent")
        if attrs.get("is_root"):
            if parent is not None:
                problems.append(f"root {node} has parent {parent}")
        else:
            if parent is None:
                problems.append(f"non-root {node} has no parent")
            elif parent not in graph.neighbors(node):
                problems.append(f"parent {parent} of {node} is not a neighbor")
    return problems
