"""Deterministic graph generators.

Every structured family used by the paper's constructions and by our
experiment suite: lines (the lower-bound workhorse of Lemmas 4, 5, 13, 14),
rings, stars and cliques (the extremes of the μ₂ measure), grids
(Figure 2), the wheel ``F_k`` with subdivided spokes (Figure 1), forests of
short paths (the Section 10 Luby workload), and caterpillars.

All generators assign sequential identifiers ``1..n`` by default; use
:mod:`repro.graphs.identifiers` to reassign identifiers afterwards.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graphs.graph import DistGraph


def empty_graph(n: int, name: str = "") -> DistGraph:
    """``n`` isolated nodes with ids ``1..n``."""
    return DistGraph({v: [] for v in range(1, n + 1)}, name=name or f"empty-{n}")


def line(n: int) -> DistGraph:
    """A path (the paper's "line") on ``n`` nodes: 1 - 2 - ... - n."""
    adjacency: Dict[int, List[int]] = {v: [] for v in range(1, n + 1)}
    for v in range(1, n):
        adjacency[v].append(v + 1)
    return DistGraph(adjacency, name=f"line-{n}")


def ring(n: int) -> DistGraph:
    """A cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ValueError("a ring needs at least 3 nodes")
    adjacency: Dict[int, List[int]] = {v: [] for v in range(1, n + 1)}
    for v in range(1, n):
        adjacency[v].append(v + 1)
    adjacency[n].append(1)
    return DistGraph(adjacency, name=f"ring-{n}")


def star(n: int) -> DistGraph:
    """A star: node 1 is the center, nodes ``2..n`` are leaves.

    Stars witness τ(G) = 1, making μ₂ far smaller than μ₁ (Section 5).
    """
    if n < 1:
        raise ValueError("a star needs at least 1 node")
    adjacency: Dict[int, List[int]] = {v: [] for v in range(1, n + 1)}
    for v in range(2, n + 1):
        adjacency[1].append(v)
    return DistGraph(adjacency, name=f"star-{n}")


def clique(n: int) -> DistGraph:
    """The complete graph on ``n`` nodes.

    Cliques witness α(G) = 1, making μ₂ far smaller than μ₁ (Section 5).
    """
    adjacency = {
        v: [u for u in range(1, n + 1) if u != v] for v in range(1, n + 1)
    }
    return DistGraph(adjacency, name=f"clique-{n}")


def complete_bipartite(a: int, b: int) -> DistGraph:
    """``K_{a,b}``: left part ``1..a``, right part ``a+1..a+b``."""
    adjacency: Dict[int, List[int]] = {v: [] for v in range(1, a + b + 1)}
    for left in range(1, a + 1):
        for right in range(a + 1, a + b + 1):
            adjacency[left].append(right)
    return DistGraph(adjacency, name=f"K{a},{b}")


def grid2d(rows: int, cols: int) -> DistGraph:
    """A ``rows x cols`` grid; node attrs carry ``pos=(i, j)``.

    Node with coordinates ``(i, j)`` (0-based) has id ``i * cols + j + 1``.
    This is the instance family of Figure 2.
    """
    def node_id(i: int, j: int) -> int:
        return i * cols + j + 1

    adjacency: Dict[int, List[int]] = {}
    attrs: Dict[int, Dict[str, Tuple[int, int]]] = {}
    for i in range(rows):
        for j in range(cols):
            node = node_id(i, j)
            adjacency.setdefault(node, [])
            attrs[node] = {"pos": (i, j)}
            if i + 1 < rows:
                adjacency[node].append(node_id(i + 1, j))
            if j + 1 < cols:
                adjacency[node].append(node_id(i, j + 1))
    return DistGraph(adjacency, attrs=attrs, name=f"grid-{rows}x{cols}")


def wheel_fk(k: int) -> DistGraph:
    """The graph ``F_k`` of Figure 1.

    A wheel with ``k`` nodes on the rim, a center node, and one additional
    node subdividing each spoke: rim node ``i`` connects to rim node
    ``i+1 (mod k)`` and to spoke node ``i``, which connects to the center.
    Total ``2k + 1`` nodes.  ``F_k`` has diameter 4 while the subgraph
    induced by the rim has diameter ``floor(k / 2)`` — the paper's witness
    that component diameter is not a monotone measure.

    Ids: rim nodes ``1..k``, spoke nodes ``k+1..2k``, center ``2k+1``.
    Node attrs carry ``role`` in ``{"rim", "spoke", "center"}``.
    """
    if k < 3:
        raise ValueError("F_k needs at least 3 rim nodes")
    center = 2 * k + 1
    adjacency: Dict[int, List[int]] = {v: [] for v in range(1, 2 * k + 2)}
    attrs: Dict[int, Dict[str, str]] = {}
    for i in range(1, k + 1):
        attrs[i] = {"role": "rim"}
        attrs[k + i] = {"role": "spoke"}
        rim_next = i % k + 1
        adjacency[i].append(rim_next)
        adjacency[i].append(k + i)
        adjacency[k + i].append(center)
    attrs[center] = {"role": "center"}
    return DistGraph(adjacency, attrs=attrs, name=f"F{k}")


def path_forest(num_paths: int, path_length: int) -> DistGraph:
    """A forest of ``num_paths`` disjoint paths of ``path_length`` nodes.

    The Section 10 workload: many small components, on which Luby's
    algorithm's *maximum* round count over components exceeds the expected
    rounds of any single component.
    """
    adjacency: Dict[int, List[int]] = {}
    node = 0
    for _ in range(num_paths):
        first = node + 1
        for offset in range(path_length):
            node += 1
            adjacency.setdefault(node, [])
            if node > first:
                adjacency[node - 1].append(node)
    return DistGraph(adjacency, name=f"paths-{num_paths}x{path_length}")


def hypercube(dimension: int) -> DistGraph:
    """The ``dimension``-dimensional hypercube: 2^dim nodes, ids 1-based.

    Node with id ``i`` corresponds to the bit string of ``i - 1``;
    neighbors differ in exactly one bit.  A classic Δ = dimension,
    diameter = dimension benchmark family.
    """
    if dimension < 0:
        raise ValueError("dimension must be non-negative")
    size = 2**dimension
    adjacency: Dict[int, List[int]] = {v: [] for v in range(1, size + 1)}
    for v in range(size):
        for bit in range(dimension):
            u = v ^ (1 << bit)
            if v < u:
                adjacency[v + 1].append(u + 1)
    return DistGraph(adjacency, name=f"hypercube-{dimension}")


def torus(rows: int, cols: int) -> DistGraph:
    """A ``rows x cols`` torus (grid with wraparound): 4-regular.

    Requires both dimensions ≥ 3 so wrap edges are distinct.  Node attrs
    carry ``pos=(i, j)`` like :func:`grid2d`.
    """
    if rows < 3 or cols < 3:
        raise ValueError("a torus needs both dimensions >= 3")

    def node_id(i: int, j: int) -> int:
        return i * cols + j + 1

    adjacency: Dict[int, List[int]] = {}
    attrs: Dict[int, Dict[str, Tuple[int, int]]] = {}
    for i in range(rows):
        for j in range(cols):
            node = node_id(i, j)
            adjacency.setdefault(node, [])
            attrs[node] = {"pos": (i, j)}
            adjacency[node].append(node_id((i + 1) % rows, j))
            adjacency[node].append(node_id(i, (j + 1) % cols))
    return DistGraph(adjacency, attrs=attrs, name=f"torus-{rows}x{cols}")


def complete_kary_tree(arity: int, height: int) -> DistGraph:
    """A complete ``arity``-ary tree of the given height (root id 1).

    An unrooted instance (no parent attributes); for the rooted version
    see :mod:`repro.graphs.rooted_trees`.
    """
    if arity < 1:
        raise ValueError("arity must be at least 1")
    adjacency: Dict[int, List[int]] = {1: []}
    frontier = [1]
    next_id = 2
    for _ in range(height):
        new_frontier = []
        for parent in frontier:
            for _ in range(arity):
                adjacency[next_id] = [parent]
                new_frontier.append(next_id)
                next_id += 1
        frontier = new_frontier
    return DistGraph(adjacency, name=f"karytree-{arity}-h{height}")


def preorder_kary_tree(arity: int, height: int) -> DistGraph:
    """A complete ``arity``-ary tree with DFS-preorder identifiers (root 1).

    Same topology as :func:`complete_kary_tree` (which numbers nodes in
    BFS order) but every node's id is smaller than all ids in its
    subtree, so each subtree occupies one contiguous identifier block.
    Two consequences make this the edge-cut benchmark family:

    * block-partitioning the id space (``shard="edgecut"``) cuts only
      ~``shards * height`` parent edges — the cut is the path from each
      block boundary back to the root, not a constant fraction of ``m``;
    * each parent's id is smaller than its children's, so every leaf is
      a local maximum and greedy symmetry-breaking finishes in
      ~``height`` adjudication waves regardless of ``n``.
    """
    if arity < 1:
        raise ValueError("arity must be at least 1")
    if height < 0:
        raise ValueError("height must be non-negative")
    # Subtree size at each depth: 1 at the leaves, else 1 + arity * below.
    sizes = [1] * (height + 1)
    for depth in range(height - 1, -1, -1):
        sizes[depth] = 1 + arity * sizes[depth + 1]
    adjacency: Dict[int, List[int]] = {1: []}
    stack = [(1, 0)]
    while stack:
        node, depth = stack.pop()
        if depth == height:
            continue
        child = node + 1
        step = sizes[depth + 1]
        for _ in range(arity):
            adjacency[child] = [node]
            stack.append((child, depth + 1))
            child += step
    return DistGraph(adjacency, name=f"preorder-karytree-{arity}-h{height}")


def caterpillar(spine: int, legs_per_node: int) -> DistGraph:
    """A caterpillar: a spine path with ``legs_per_node`` leaves per node.

    Ids: spine is ``1..spine``; leaves follow in spine order.
    """
    adjacency: Dict[int, List[int]] = {v: [] for v in range(1, spine + 1)}
    for v in range(1, spine):
        adjacency[v].append(v + 1)
    next_id = spine + 1
    for v in range(1, spine + 1):
        for _ in range(legs_per_node):
            adjacency[next_id] = [v]
            next_id += 1
    return DistGraph(adjacency, name=f"caterpillar-{spine}x{legs_per_node}")
