"""The distributed graph instance type.

A :class:`DistGraph` is an immutable undirected graph whose nodes are
distinct positive integer identifiers drawn from ``{1, ..., d}``, exactly
the instance shape of Section 2 of the paper.  It also carries optional
per-node attributes used by structured instances (grid coordinates, rooted
tree parent pointers).
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)


class DistGraph:
    """An undirected graph instance for the synchronous model.

    Args:
        adjacency: Mapping from node id to an iterable of neighbor ids.
            Symmetry is enforced: an edge listed in either direction is
            present in both.
        d: Upper bound on the largest identifier; defaults to the largest
            identifier present.
        attrs: Optional per-node attribute mappings (e.g. ``parent`` /
            ``is_root`` for rooted trees, ``pos`` for grids).
        name: Optional human-readable instance name.
    """

    def __init__(
        self,
        adjacency: Mapping[int, Iterable[int]],
        d: Optional[int] = None,
        attrs: Optional[Mapping[int, Mapping[str, Any]]] = None,
        name: str = "",
    ) -> None:
        neighbor_sets: Dict[int, set] = {int(v): set() for v in adjacency}
        for node, neighbors in adjacency.items():
            node = int(node)
            for other in neighbors:
                other = int(other)
                if other == node:
                    raise ValueError(f"self-loop at node {node}")
                if other not in neighbor_sets:
                    raise ValueError(
                        f"edge ({node}, {other}) references unknown node {other}"
                    )
                neighbor_sets[node].add(other)
                neighbor_sets[other].add(node)

        self._adjacency: Dict[int, FrozenSet[int]] = {
            node: frozenset(neighbors) for node, neighbors in neighbor_sets.items()
        }
        self.nodes: Tuple[int, ...] = tuple(sorted(self._adjacency))
        if any(node < 1 for node in self.nodes):
            raise ValueError("node identifiers must be positive integers")
        self.n = len(self.nodes)
        self.d = d if d is not None else (max(self.nodes) if self.nodes else 0)
        if self.nodes and self.d < max(self.nodes):
            raise ValueError(
                f"identifier bound d={self.d} below largest id {max(self.nodes)}"
            )
        self._attrs: Dict[int, Dict[str, Any]] = {
            int(node): dict(mapping) for node, mapping in (attrs or {}).items()
        }
        self.name = name
        # The graph is immutable, so the maximum degree is computed once;
        # recomputing it per node context made engine setup O(n^2).
        self._delta = max(
            (len(nbrs) for nbrs in self._adjacency.values()), default=0
        )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> FrozenSet[int]:
        """The neighbor set of ``node``."""
        return self._adjacency[node]

    def degree(self, node: int) -> int:
        """Number of neighbors of ``node``."""
        return len(self._adjacency[node])

    @property
    def delta(self) -> int:
        """Maximum degree of the graph (0 for the empty graph)."""
        return self._delta

    def node_attrs(self, node: int) -> Mapping[str, Any]:
        """Per-node attribute mapping (may be empty)."""
        return self._attrs.get(node, {})

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return v in self._adjacency.get(u, frozenset())

    def edges(self) -> List[Tuple[int, int]]:
        """All edges as ``(min, max)`` pairs, sorted."""
        return sorted(
            (min(u, v), max(u, v))
            for u in self.nodes
            for v in self._adjacency[u]
            if u < v
        )

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def __contains__(self, node: int) -> bool:
        return node in self._adjacency

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<DistGraph{label} n={self.n} m={self.num_edges} d={self.d}>"

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int], name: str = "") -> "DistGraph":
        """The subgraph induced by ``nodes`` (identifier bound preserved)."""
        keep = set(nodes)
        unknown = keep - set(self._adjacency)
        if unknown:
            raise ValueError(f"unknown nodes in subgraph request: {sorted(unknown)}")
        adjacency = {
            node: [other for other in self._adjacency[node] if other in keep]
            for node in keep
        }
        attrs = {node: self._attrs[node] for node in keep if node in self._attrs}
        return DistGraph(adjacency, d=self.d, attrs=attrs, name=name or self.name)

    def components(self) -> List[FrozenSet[int]]:
        """Connected components, each as a frozenset, sorted by min id."""
        seen: set = set()
        components: List[FrozenSet[int]] = []
        for start in self.nodes:
            if start in seen:
                continue
            queue = deque([start])
            seen.add(start)
            members = {start}
            while queue:
                node = queue.popleft()
                for other in self._adjacency[node]:
                    if other not in seen:
                        seen.add(other)
                        members.add(other)
                        queue.append(other)
            components.append(frozenset(members))
        return sorted(components, key=min)

    def is_connected(self) -> bool:
        """Whether the graph has at most one component."""
        return len(self.components()) <= 1

    def bfs_distances(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable node."""
        distances = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for other in self._adjacency[node]:
                if other not in distances:
                    distances[other] = distances[node] + 1
                    queue.append(other)
        return distances

    def diameter(self) -> int:
        """Diameter of a connected graph (max pairwise hop distance).

        Raises ``ValueError`` on disconnected or empty graphs, where the
        diameter is undefined.
        """
        if self.n == 0 or not self.is_connected():
            raise ValueError("diameter is defined for nonempty connected graphs")
        best = 0
        for node in self.nodes:
            distances = self.bfs_distances(node)
            best = max(best, max(distances.values()))
        return best

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a ``networkx.Graph`` (node attributes preserved)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self.nodes)
        nx_graph.add_edges_from(self.edges())
        for node, mapping in self._attrs.items():
            nx_graph.nodes[node].update(mapping)
        return nx_graph

    @classmethod
    def from_networkx(
        cls, nx_graph, d: Optional[int] = None, name: str = ""
    ) -> "DistGraph":
        """Build from a ``networkx.Graph`` whose nodes are positive ints."""
        adjacency = {node: list(nx_graph.neighbors(node)) for node in nx_graph.nodes}
        attrs = {
            node: dict(data) for node, data in nx_graph.nodes(data=True) if data
        }
        return cls(adjacency, d=d, attrs=attrs, name=name)

    def with_attrs(self, attrs: Mapping[int, Mapping[str, Any]]) -> "DistGraph":
        """A copy with the given per-node attributes merged in."""
        merged: Dict[int, Dict[str, Any]] = {
            node: dict(mapping) for node, mapping in self._attrs.items()
        }
        for node, mapping in attrs.items():
            merged.setdefault(int(node), {}).update(mapping)
        adjacency = {node: list(self._adjacency[node]) for node in self.nodes}
        return DistGraph(adjacency, d=self.d, attrs=merged, name=self.name)
