"""The distributed graph instance type.

A :class:`DistGraph` is an immutable undirected graph whose nodes are
distinct positive integer identifiers drawn from ``{1, ..., d}``, exactly
the instance shape of Section 2 of the paper.  It also carries optional
per-node attributes used by structured instances (grid coordinates, rooted
tree parent pointers).

Structurally, every ``DistGraph`` is backed by one shared, immutable
:class:`~repro.graphs.csr.CSRTopology` built once at construction: the
public accessors (``neighbors``/``degree``/``edges``/``has_edge``/
``delta``) delegate to the CSR view, and runtime layers that want
index-based iteration (the engine, fault validators, error measures) read
``graph.csr`` directly.  Derived graphs — subgraphs, attribute copies —
are new ``DistGraph`` objects with their own topology (or, when the
structure is unchanged, a shared reference to the same one); caches are
never mutated, so they can never go stale.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Any,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

from repro.graphs.csr import CSRTopology


class DistGraph:
    """An undirected graph instance for the synchronous model.

    Args:
        adjacency: Mapping from node id to an iterable of neighbor ids.
            Symmetry is enforced: an edge listed in either direction is
            present in both.
        d: Upper bound on the largest identifier; defaults to the largest
            identifier present.
        attrs: Optional per-node attribute mappings (e.g. ``parent`` /
            ``is_root`` for rooted trees, ``pos`` for grids).
        name: Optional human-readable instance name.
    """

    def __init__(
        self,
        adjacency: Mapping[int, Iterable[int]],
        d: Optional[int] = None,
        attrs: Optional[Mapping[int, Mapping[str, Any]]] = None,
        name: str = "",
    ) -> None:
        neighbor_sets: Dict[int, set] = {int(v): set() for v in adjacency}
        for node, neighbors in adjacency.items():
            node = int(node)
            for other in neighbors:
                other = int(other)
                if other == node:
                    raise ValueError(f"self-loop at node {node}")
                if other not in neighbor_sets:
                    raise ValueError(
                        f"edge ({node}, {other}) references unknown node {other}"
                    )
                neighbor_sets[node].add(other)
                neighbor_sets[other].add(node)

        self._init_from_csr(
            CSRTopology.from_adjacency(neighbor_sets), d, attrs, name
        )

    def _init_from_csr(
        self,
        csr: CSRTopology,
        d: Optional[int],
        attrs: Optional[Mapping[int, Mapping[str, Any]]],
        name: str,
    ) -> None:
        """Shared tail of construction over an already-built topology."""
        self._csr = csr
        self.nodes: Tuple[int, ...] = csr.ids
        if any(node < 1 for node in self.nodes):
            raise ValueError("node identifiers must be positive integers")
        self.n = csr.n
        self.d = d if d is not None else (self.nodes[-1] if self.nodes else 0)
        if self.nodes and self.d < self.nodes[-1]:
            raise ValueError(
                f"identifier bound d={self.d} below largest id {self.nodes[-1]}"
            )
        self._attrs: Dict[int, Dict[str, Any]] = {
            int(node): dict(mapping) for node, mapping in (attrs or {}).items()
        }
        self.name = name
        #: Lazy per-node frozenset views of the CSR rows — built on first
        #: request and shared with every consumer (node contexts hold the
        #: same frozensets rather than private copies).
        self._neighbor_cache: Dict[int, FrozenSet[int]] = {}
        #: Ambient maximum-degree override.  ``None`` for ordinary graphs
        #: (``delta`` reads the topology's max degree); a component-shard
        #: view (:func:`repro.shard.plan.shard_view`) pins the *parent*
        #: graph's Δ here so palette sizes and template bounds match the
        #: unsharded run exactly.
        self._delta_override: Optional[int] = None

    @classmethod
    def _from_csr(
        cls,
        csr: CSRTopology,
        d: Optional[int],
        attrs: Optional[Mapping[int, Mapping[str, Any]]],
        name: str,
    ) -> "DistGraph":
        """Build a graph over an existing topology, skipping re-validation.

        Used by derived-graph constructors whose structure is already a
        validated topology (e.g. :meth:`with_attrs`, which shares the CSR
        arrays of its source outright).
        """
        graph = cls.__new__(cls)
        graph._init_from_csr(csr, d, attrs, name)
        return graph

    # ------------------------------------------------------------------
    # Basic accessors (delegating to the CSR topology)
    # ------------------------------------------------------------------
    @property
    def csr(self) -> CSRTopology:
        """The shared read-only CSR view of this graph's structure."""
        return self._csr

    def neighbors(self, node: int) -> FrozenSet[int]:
        """The neighbor set of ``node``."""
        cached = self._neighbor_cache.get(node)
        if cached is None:
            cached = self._neighbor_cache[node] = frozenset(
                self._csr.neighbor_ids(node)
            )
        return cached

    def degree(self, node: int) -> int:
        """Number of neighbors of ``node``."""
        return self._csr.degree(node)

    @property
    def delta(self) -> int:
        """Maximum degree of the graph (0 for the empty graph).

        Shard views report their *parent* graph's Δ (the ambient bound a
        node would know in the unsharded run); see ``_delta_override``.
        """
        if self._delta_override is not None:
            return self._delta_override
        return self._csr.max_degree

    def node_attrs(self, node: int) -> Mapping[str, Any]:
        """Per-node attribute mapping (may be empty)."""
        return self._attrs.get(node, {})

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge."""
        return self._csr.has_edge(u, v)

    def edges(self) -> List[Tuple[int, int]]:
        """All edges as ``(min, max)`` pairs, sorted.

        The list is materialized once on the topology (already in sorted
        order — CSR rows ascend) and copied per call, so callers may
        mutate their copy freely without invalidating the cache.
        """
        return list(self._csr.edges())

    @property
    def num_edges(self) -> int:
        """Number of edges."""
        return self._csr.m

    def __contains__(self, node: int) -> bool:
        return node in self._csr.index_of

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<DistGraph{label} n={self.n} m={self.num_edges} d={self.d}>"

    # ------------------------------------------------------------------
    # Pickling (sweep cells carrying literal graphs cross process pools)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        # Ship structure + declared data only: the node tuple, interning
        # dict and neighbor frozensets are all rebuildable from the CSR
        # topology, and shipping them would dwarf the topology itself
        # (and defeat the shared-memory handle path entirely).
        return {
            "csr": self._csr,
            "d": self.d,
            "attrs": self._attrs,
            "name": self.name,
            "n": self.n,
            "delta_override": self._delta_override,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        # Assign directly instead of re-running construction validation:
        # the pickled state came from an already-validated graph, and
        # per-chunk unpickles at n=10⁷ cannot afford O(n) re-checks.
        csr = state["csr"]
        self._csr = csr
        self.nodes = csr.ids
        self.d = state["d"]
        self._attrs = state["attrs"]
        self.name = state["name"]
        self._neighbor_cache = {}
        # Shard views pin ambient quantities from their parent graph.
        self.n = state["n"]
        self._delta_override = state["delta_override"]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def subgraph(self, nodes: Iterable[int], name: str = "") -> "DistGraph":
        """The subgraph induced by ``nodes`` (identifier bound preserved).

        The induced graph gets its **own** freshly built topology and
        caches; nothing structural is shared with the parent, so a
        subgraph of a subgraph reports ``n``/``m``/``max_degree`` computed
        from its own (twice-filtered) adjacency, never from a stale
        parent view.
        """
        keep = set(nodes)
        index_of = self._csr.index_of
        unknown = keep - index_of.keys()
        if unknown:
            raise ValueError(f"unknown nodes in subgraph request: {sorted(unknown)}")
        csr = self._csr
        ids = csr.ids
        adjacency = {
            node: [
                ids[other]
                for other in csr.row(index_of[node])
                if ids[other] in keep
            ]
            for node in keep
        }
        attrs = {node: self._attrs[node] for node in keep if node in self._attrs}
        return DistGraph(adjacency, d=self.d, attrs=attrs, name=name or self.name)

    def components(self) -> List[FrozenSet[int]]:
        """Connected components, each as a frozenset, sorted by min id.

        Delegates to :meth:`CSRTopology.components` (computed once and
        cached on the shared topology — index tuples there, identifier
        frozensets here); ascending-min-index order is ascending-min-id
        order because identifiers ascend with indices.
        """
        ids = self._csr.ids
        return [
            frozenset(ids[index] for index in part)
            for part in self._csr.components()
        ]

    def is_connected(self) -> bool:
        """Whether the graph has at most one component."""
        return len(self.components()) <= 1

    def bfs_distances(self, source: int) -> Dict[int, int]:
        """Hop distances from ``source`` to every reachable node."""
        csr = self._csr
        ids = csr.ids
        indptr = csr.indptr
        indices = csr.indices
        start = csr.index_of[source]
        hops = {start: 0}
        queue = deque([start])
        while queue:
            index = queue.popleft()
            next_hop = hops[index] + 1
            for position in range(indptr[index], indptr[index + 1]):
                other = indices[position]
                if other not in hops:
                    hops[other] = next_hop
                    queue.append(other)
        return {ids[index]: hop for index, hop in hops.items()}

    def diameter(self) -> int:
        """Diameter of a connected graph (max pairwise hop distance).

        Raises ``ValueError`` on disconnected or empty graphs, where the
        diameter is undefined.
        """
        if self.n == 0 or not self.is_connected():
            raise ValueError("diameter is defined for nonempty connected graphs")
        best = 0
        for node in self.nodes:
            distances = self.bfs_distances(node)
            best = max(best, max(distances.values()))
        return best

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Export to a ``networkx.Graph`` (node attributes preserved)."""
        import networkx as nx

        nx_graph = nx.Graph()
        nx_graph.add_nodes_from(self.nodes)
        nx_graph.add_edges_from(self.edges())
        for node, mapping in self._attrs.items():
            nx_graph.nodes[node].update(mapping)
        return nx_graph

    @classmethod
    def from_networkx(
        cls, nx_graph, d: Optional[int] = None, name: str = ""
    ) -> "DistGraph":
        """Build from a ``networkx.Graph`` whose nodes are positive ints."""
        adjacency = {node: list(nx_graph.neighbors(node)) for node in nx_graph.nodes}
        attrs = {
            node: dict(data) for node, data in nx_graph.nodes(data=True) if data
        }
        return cls(adjacency, d=d, attrs=attrs, name=name)

    def with_attrs(self, attrs: Mapping[int, Mapping[str, Any]]) -> "DistGraph":
        """A copy with the given per-node attributes merged in.

        The structure is unchanged, so the copy *shares* this graph's CSR
        topology (it is immutable) instead of rebuilding it.
        """
        merged: Dict[int, Dict[str, Any]] = {
            node: dict(mapping) for node, mapping in self._attrs.items()
        }
        for node, mapping in attrs.items():
            merged.setdefault(int(node), {}).update(mapping)
        return DistGraph._from_csr(self._csr, self.d, merged, self.name)
