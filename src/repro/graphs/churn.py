"""Graph churn: perturbing an instance into a "related network".

The paper motivates predictions with exactly this scenario (Section 1.1):

    a maximal independent set has been computed on one network, but now a
    related network is being used.  It might have the same set of nodes,
    but a slightly different set of edges or some nodes ... may have been
    added or removed.

These helpers produce the perturbed network; the old solution becomes the
prediction via :mod:`repro.predictions.stale`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

from repro.graphs.graph import DistGraph


def perturb_edges(
    graph: DistGraph,
    add: int = 0,
    remove: int = 0,
    seed: int = 0,
) -> DistGraph:
    """Add and remove random edges (node set unchanged).

    ``add`` random non-edges become edges and ``remove`` random existing
    edges disappear (clamped to availability).  Deterministic per seed.
    """
    rng = random.Random(f"{seed}:edge-churn")
    edges = set(graph.edges())

    removable = sorted(edges)
    rng.shuffle(removable)
    for edge in removable[: min(remove, len(removable))]:
        edges.discard(edge)

    chosen: Set[Tuple[int, int]] = set()
    nodes = list(graph.nodes)
    # For large graphs, rejection-sample rather than materializing all
    # non-edges.  ``existing`` keeps removed edges from being re-added.
    attempts = 0
    existing = set(graph.edges())
    while len(chosen) < add and attempts < 50 * max(1, add):
        attempts += 1
        u, v = rng.sample(nodes, 2)
        edge = (min(u, v), max(u, v))
        if edge in existing or edge in chosen:
            continue
        chosen.add(edge)
    edges.update(chosen)

    adjacency: Dict[int, List[int]] = {node: [] for node in graph.nodes}
    for u, v in edges:
        adjacency[u].append(v)
    attrs = {
        node: dict(graph.node_attrs(node))
        for node in graph.nodes
        if graph.node_attrs(node)
    }
    return DistGraph(adjacency, d=graph.d, attrs=attrs, name=f"{graph.name}+churn")


def perturb_nodes(
    graph: DistGraph,
    remove: int = 0,
    add: int = 0,
    attach_degree: int = 2,
    seed: int = 0,
) -> DistGraph:
    """Remove random nodes and add fresh ones attached to random survivors.

    New nodes receive identifiers above the current maximum (``d`` grows
    accordingly) and attach to ``attach_degree`` random existing nodes.
    """
    rng = random.Random(f"{seed}:node-churn")
    survivors = list(graph.nodes)
    rng.shuffle(survivors)
    removed = set(survivors[: min(remove, max(0, len(survivors) - 1))])
    keep = [node for node in graph.nodes if node not in removed]

    adjacency: Dict[int, List[int]] = {
        node: [other for other in graph.neighbors(node) if other not in removed]
        for node in keep
    }
    next_id = (max(graph.nodes) if graph.nodes else 0) + 1
    for _ in range(add):
        targets = rng.sample(keep, min(attach_degree, len(keep))) if keep else []
        adjacency[next_id] = list(targets)
        keep.append(next_id)
        next_id += 1

    attrs = {
        node: dict(graph.node_attrs(node))
        for node in keep
        if node in graph and graph.node_attrs(node)
    }
    d = max(graph.d, next_id - 1)
    return DistGraph(adjacency, d=d, attrs=attrs, name=f"{graph.name}+nodechurn")
