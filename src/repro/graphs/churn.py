"""Graph churn: perturbing an instance into a "related network".

The paper motivates predictions with exactly this scenario (Section 1.1):

    a maximal independent set has been computed on one network, but now a
    related network is being used.  It might have the same set of nodes,
    but a slightly different set of edges or some nodes ... may have been
    added or removed.

These helpers produce the perturbed network; the old solution becomes the
prediction via :mod:`repro.predictions.stale`.  The epoch-stream layer
(:mod:`repro.dynamic`) builds per-epoch insert/delete batches out of the
same sampling primitives, so a one-shot perturbation and one epoch of a
dynamic stream draw from identical distributions.

Delivery contract: both perturbers deliver *exactly* what they promise or
say so.  ``perturb_edges`` adds exactly ``min(add, available non-edges)``
edges (falling back from rejection sampling to explicit enumeration on
dense graphs) and warns when the graph cannot absorb the request;
``perturb_nodes`` documents its keep-one-survivor clamp, warns when it
engages, and exposes the realized removal on the returned graph.
"""

from __future__ import annotations

import random
import warnings
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.graphs.graph import DistGraph

Edge = Tuple[int, int]


def sample_non_edges(
    nodes: Sequence[int],
    existing: Set[Edge],
    count: int,
    rng: random.Random,
    *,
    attempt_factor: int = 50,
) -> List[Edge]:
    """Exactly ``min(count, available)`` distinct non-edges, seeded.

    Rejection-samples pairs first (cheap on sparse graphs); if the
    attempt budget runs dry — the near-complete-graph regime where
    almost every pair is already an edge — it falls back to enumerating
    the remaining non-edges and sampling the shortfall exactly.  The
    result is deterministic for a given ``rng`` state and never silently
    under-delivers: fewer than ``count`` edges come back only when the
    graph has fewer than ``count`` non-edges left.

    ``existing`` is the set of ``(min, max)`` pairs that may not be
    produced (it is not mutated).
    """
    if count <= 0 or len(nodes) < 2:
        return []
    total_pairs = len(nodes) * (len(nodes) - 1) // 2
    available = total_pairs - len(existing)
    target = min(count, available)
    chosen: Set[Edge] = set()
    picked: List[Edge] = []
    attempts = 0
    budget = attempt_factor * max(1, count)
    node_list = list(nodes)
    while len(picked) < target and attempts < budget:
        attempts += 1
        u, v = rng.sample(node_list, 2)
        edge = (min(u, v), max(u, v))
        if edge in existing or edge in chosen:
            continue
        chosen.add(edge)
        picked.append(edge)
    if len(picked) < target:
        # Dense/small regime: enumerate what is left and sample exactly.
        remaining = [
            (u, v)
            for i, u in enumerate(node_list)
            for v in node_list[i + 1 :]
            if (min(u, v), max(u, v)) not in existing
            and (min(u, v), max(u, v)) not in chosen
        ]
        remaining = [(min(u, v), max(u, v)) for u, v in remaining]
        remaining.sort()
        picked.extend(rng.sample(remaining, target - len(picked)))
    return picked


def perturb_edges(
    graph: DistGraph,
    add: int = 0,
    remove: int = 0,
    seed: int = 0,
) -> DistGraph:
    """Add and remove random edges (node set unchanged).

    ``remove`` random existing edges disappear (clamped to the number of
    edges present) and exactly ``min(add, available non-edges)`` random
    non-edges become edges.  Removed edges are never re-added within the
    same call.  When the graph is too close to complete to absorb the
    full ``add`` request, a :class:`UserWarning` records the shortfall —
    the returned graph is still exactly as large as announced, never
    silently smaller.  Deterministic per seed.
    """
    rng = random.Random(f"{seed}:edge-churn")
    edges = set(graph.edges())

    removable = sorted(edges)
    rng.shuffle(removable)
    for edge in removable[: min(remove, len(removable))]:
        edges.discard(edge)

    # ``existing`` keeps removed edges from being re-added.
    existing = set(graph.edges())
    chosen = sample_non_edges(graph.nodes, existing, add, rng)
    if len(chosen) < add:
        warnings.warn(
            f"perturb_edges: requested add={add} but the graph has only "
            f"{len(chosen)} non-edges available (shortfall "
            f"{add - len(chosen)}); delivering {len(chosen)}",
            stacklevel=2,
        )
    edges.update(chosen)

    adjacency: Dict[int, List[int]] = {node: [] for node in graph.nodes}
    for u, v in edges:
        adjacency[u].append(v)
    attrs = {
        node: dict(graph.node_attrs(node))
        for node in graph.nodes
        if graph.node_attrs(node)
    }
    return DistGraph(adjacency, d=graph.d, attrs=attrs, name=f"{graph.name}+churn")


def node_churn_plan(
    graph: DistGraph,
    remove: int = 0,
    add: int = 0,
    seed: int = 0,
) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """The ``(removed ids, added ids)`` a :func:`perturb_nodes` call realizes.

    Deterministic per ``(graph, remove, add, seed)`` and shared with
    :func:`perturb_nodes` itself, so callers can learn the exact churn a
    perturbation applied without re-deriving it from set differences.
    The removal is clamped to ``len(graph.nodes) - 1`` (see
    :func:`perturb_nodes`).
    """
    rng = random.Random(f"{seed}:node-churn")
    survivors = list(graph.nodes)
    rng.shuffle(survivors)
    removed = tuple(sorted(survivors[: min(remove, max(0, len(survivors) - 1))]))
    next_id = (max(graph.nodes) if graph.nodes else 0) + 1
    added = tuple(range(next_id, next_id + max(0, add)))
    return removed, added


def perturb_nodes(
    graph: DistGraph,
    remove: int = 0,
    add: int = 0,
    attach_degree: int = 2,
    seed: int = 0,
) -> DistGraph:
    """Remove random nodes and add fresh ones attached to random survivors.

    New nodes receive identifiers above the current maximum (``d`` grows
    accordingly) and attach to ``attach_degree`` random existing nodes.

    **Clamp:** removal never empties the graph — at most
    ``len(graph.nodes) - 1`` nodes are removed, so one survivor always
    remains (an empty instance has no distributed execution to speak
    of).  A request for ``remove >= len(graph.nodes)`` engages the clamp
    and emits a :class:`UserWarning` naming the realized removal.

    The realized churn is exposed two ways: the returned graph's name
    records the actual counts (``...+nodechurn[-R+A]``) and its
    ``churn_removed`` attribute carries the exact tuple of removed
    identifiers (also available up front via :func:`node_churn_plan`).

    ``remove=0, add=0`` is the identity: the input graph is returned
    unchanged.
    """
    if remove == 0 and add == 0:
        return graph
    rng = random.Random(f"{seed}:node-churn")
    survivors = list(graph.nodes)
    rng.shuffle(survivors)
    clamp = max(0, len(survivors) - 1)
    if remove > clamp:
        warnings.warn(
            f"perturb_nodes: requested remove={remove} of {len(survivors)} "
            f"nodes; clamped to {clamp} so one survivor remains",
            stacklevel=2,
        )
    removed = set(survivors[: min(remove, clamp)])
    keep = [node for node in graph.nodes if node not in removed]

    adjacency: Dict[int, List[int]] = {
        node: [other for other in graph.neighbors(node) if other not in removed]
        for node in keep
    }
    next_id = (max(graph.nodes) if graph.nodes else 0) + 1
    for _ in range(add):
        targets = rng.sample(keep, min(attach_degree, len(keep))) if keep else []
        adjacency[next_id] = list(targets)
        keep.append(next_id)
        next_id += 1

    attrs = {
        node: dict(graph.node_attrs(node))
        for node in keep
        if node in graph and graph.node_attrs(node)
    }
    d = max(graph.d, next_id - 1)
    name = f"{graph.name}+nodechurn[-{len(removed)}+{add}]"
    perturbed = DistGraph(adjacency, d=d, attrs=attrs, name=name)
    perturbed.churn_removed = tuple(sorted(removed))
    return perturbed
