"""The CSR topology core shared by every runtime layer.

A :class:`CSRTopology` is the int-indexed, read-only view of a graph's
structure: the classic compressed-sparse-row pair ``indptr``/``indices``
over nodes renumbered ``0 .. n-1`` in ascending identifier order, plus the
interning tables between external identifiers and internal indices.  It is
built **once** per :class:`~repro.graphs.graph.DistGraph` and shared by the
engine, the fault layer and the error measures, replacing the repeated
dict-of-frozenset walks that used to dominate topology-heavy code paths.

Design points:

* **Rows are sorted.**  ``indices[indptr[i]:indptr[i+1]]`` holds the
  neighbor *indices* of node ``i`` in ascending order; because node
  identifiers are interned in ascending order, ascending indices are also
  ascending identifiers.  Sorted rows give ``O(log deg)`` membership via
  :func:`bisect` and let :meth:`edges` stream the globally sorted edge list
  without a sort.
* **Arrays, not objects.**  ``indptr`` and ``indices`` are ``array('q')``
  buffers: compact, cache-friendly, and picklable — a topology crosses the
  process-pool boundary of :mod:`repro.exec` as two flat buffers plus the
  identifier tuple (the id→index dict is rebuilt lazily on first use rather
  than shipped).
* **Immutable.**  Every derived quantity (edge list, degrees, maximum
  degree) is computed once and cached; a "changed" graph is a *new*
  topology, never a mutated one, so cached views can never go stale.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
)

#: Optional hook consulted by :meth:`CSRTopology.__reduce__`.  When a
#: :class:`repro.shard.store.SharedCSRStore` is active it installs a
#: reducer here that publishes the buffers into shared memory and returns
#: a tiny attach-handle reduce tuple; ``None`` (the default) pickles the
#: flat buffers.  Kept as a module-level hook so :mod:`repro.graphs` never
#: imports :mod:`repro.shard` (the dependency points the other way).
_SHARED_REDUCER: Optional[Callable[["CSRTopology"], Optional[tuple]]] = None


def set_shared_reducer(
    reducer: Optional[Callable[["CSRTopology"], Optional[tuple]]]
) -> None:
    """Install (or clear, with ``None``) the shared-memory reduce hook."""
    global _SHARED_REDUCER
    _SHARED_REDUCER = reducer


@contextmanager
def plain_reduce() -> Iterator[None]:
    """Suspend the shared-memory reduce hook for the enclosed pickling.

    Content keys (:func:`repro.exec.plan._literal_key`) and disk-cache
    pickles must be self-contained and identical whether or not a store
    is active — a key must never encode a transient segment name, and a
    cached artifact must outlive the store that was active when it was
    written.  Both sites wrap their ``pickle.dumps`` in this context.
    """
    global _SHARED_REDUCER
    saved = _SHARED_REDUCER
    _SHARED_REDUCER = None
    try:
        yield
    finally:
        _SHARED_REDUCER = saved


class CSRTopology:
    """Immutable CSR view of an undirected graph.

    Build via :meth:`from_adjacency` (validated, symmetric input expected);
    consumers usually get one from :attr:`repro.graphs.graph.DistGraph.csr`.

    Attributes:
        ids: Node identifiers in ascending order; ``ids[i]`` is the
            identifier of internal index ``i``.
        indptr: Row-pointer array of length ``n + 1``.
        indices: Concatenated neighbor rows (internal indices, each row
            ascending); length ``2m``.
        n: Number of nodes.
        m: Number of undirected edges.
    """

    __slots__ = (
        "ids",
        "indptr",
        "indices",
        "n",
        "m",
        "_index_of",
        "_max_degree",
        "_edges",
        "_components",
    )

    def __init__(
        self, ids: Tuple[int, ...], indptr: array, indices: array
    ) -> None:
        self.ids = ids
        self.indptr = indptr
        self.indices = indices
        self.n = len(ids)
        self.m = len(indices) // 2
        self._index_of: Optional[Dict[int, int]] = None
        self._max_degree: Optional[int] = None
        self._edges: Optional[Tuple[Tuple[int, int], ...]] = None
        self._components: Optional[Tuple[Tuple[int, ...], ...]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_adjacency(cls, adjacency: Mapping[int, Any]) -> "CSRTopology":
        """Build from a symmetric ``id -> iterable of neighbor ids`` map.

        The input must already be symmetric and self-loop-free (the
        :class:`~repro.graphs.graph.DistGraph` constructor guarantees
        both); identifiers may be arbitrary positive ints.
        """
        ids = tuple(sorted(adjacency))
        index_of = {node: index for index, node in enumerate(ids)}
        indptr = array("q", bytes(8 * (len(ids) + 1)))
        indices = array("q")
        position = 0
        for index, node in enumerate(ids):
            row = sorted(index_of[other] for other in adjacency[node])
            indices.extend(row)
            position += len(row)
            indptr[index + 1] = position
        topology = cls(ids, indptr, indices)
        topology._index_of = index_of
        return topology

    # ------------------------------------------------------------------
    # Interning
    # ------------------------------------------------------------------
    @property
    def index_of(self) -> Dict[int, int]:
        """The ``identifier -> internal index`` table (built lazily)."""
        table = self._index_of
        if table is None:
            table = self._index_of = {
                node: index for index, node in enumerate(self.ids)
            }
        return table

    def index(self, node: int) -> int:
        """Internal index of ``node`` (KeyError for unknown identifiers)."""
        return self.index_of[node]

    def __contains__(self, node: int) -> bool:
        return node in self.index_of

    # ------------------------------------------------------------------
    # Index-based accessors (the hot-loop API)
    # ------------------------------------------------------------------
    def row(self, index: int) -> array:
        """Neighbor indices of internal index ``index``, ascending."""
        return self.indices[self.indptr[index] : self.indptr[index + 1]]

    def degree_at(self, index: int) -> int:
        """Degree of internal index ``index``."""
        return self.indptr[index + 1] - self.indptr[index]

    def iter_rows(self) -> Iterator[Tuple[int, array]]:
        """Yield ``(index, neighbor-index row)`` for every node."""
        indptr = self.indptr
        indices = self.indices
        for index in range(self.n):
            yield index, indices[indptr[index] : indptr[index + 1]]

    # ------------------------------------------------------------------
    # Identifier-based accessors (the DistGraph-facing API)
    # ------------------------------------------------------------------
    def degree(self, node: int) -> int:
        """Degree of the node with identifier ``node``."""
        return self.degree_at(self.index_of[node])

    def neighbor_ids(self, node: int) -> Tuple[int, ...]:
        """Neighbor identifiers of ``node``, ascending."""
        ids = self.ids
        index = self.index_of[node]
        return tuple(
            ids[other]
            for other in self.indices[
                self.indptr[index] : self.indptr[index + 1]
            ]
        )

    def has_edge(self, u: int, v: int) -> bool:
        """Whether ``{u, v}`` is an edge (``False`` on unknown ids)."""
        table = self.index_of
        u_index = table.get(u)
        v_index = table.get(v)
        if u_index is None or v_index is None:
            return False
        # Probe the smaller row; rows are sorted, so bisect decides.
        if self.degree_at(u_index) > self.degree_at(v_index):
            u_index, v_index = v_index, u_index
        lo = self.indptr[u_index]
        hi = self.indptr[u_index + 1]
        position = bisect_left(self.indices, v_index, lo, hi)
        return position < hi and self.indices[position] == v_index

    @property
    def max_degree(self) -> int:
        """Maximum degree (0 for the empty graph), computed once."""
        if self._max_degree is None:
            indptr = self.indptr
            self._max_degree = max(
                (indptr[i + 1] - indptr[i] for i in range(self.n)), default=0
            )
        return self._max_degree

    def edges(self) -> Tuple[Tuple[int, int], ...]:
        """Every edge as an ``(min id, max id)`` pair, globally sorted.

        Sortedness is free: identifiers ascend with indices and rows are
        ascending, so streaming each row's above-diagonal half in index
        order yields the lexicographically sorted edge list directly —
        no ``m log m`` sort, computed once and cached.
        """
        if self._edges is None:
            ids = self.ids
            indptr = self.indptr
            indices = self.indices
            pairs: List[Tuple[int, int]] = []
            for index in range(self.n):
                node = ids[index]
                for position in range(indptr[index], indptr[index + 1]):
                    other = indices[position]
                    if other > index:
                        pairs.append((node, ids[other]))
            self._edges = tuple(pairs)
        return self._edges

    def degrees(self) -> List[int]:
        """Degrees of every node in index (= ascending identifier) order."""
        indptr = self.indptr
        return [indptr[i + 1] - indptr[i] for i in range(self.n)]

    def components(self) -> Tuple[Tuple[int, ...], ...]:
        """Connected components as tuples of internal *indices*.

        Each component's indices ascend, and components are ordered by
        their smallest index — which, because identifiers ascend with
        indices, is also ascending-min-identifier order.  Computed once
        and cached (the shard planner asks per shard task; workers that
        attach the same shared topology share the cached answer).
        """
        if self._components is None:
            indptr = self.indptr
            indices = self.indices
            seen = bytearray(self.n)
            parts: List[Tuple[int, ...]] = []
            for start in range(self.n):
                if seen[start]:
                    continue
                seen[start] = 1
                stack = [start]
                members = [start]
                while stack:
                    index = stack.pop()
                    for position in range(indptr[index], indptr[index + 1]):
                        other = indices[position]
                        if not seen[other]:
                            seen[other] = 1
                            members.append(other)
                            stack.append(other)
                members.sort()
                parts.append(tuple(members))
            self._components = tuple(parts)
        return self._components

    # ------------------------------------------------------------------
    # Pickling (process-pool sweeps ship topologies to workers)
    # ------------------------------------------------------------------
    def __getstate__(self) -> Tuple[Tuple[int, ...], array, array]:
        # Ship only the flat buffers; the interning dict and cached
        # derived views are rebuilt lazily on the other side.  A topology
        # attached from a shared-memory segment holds memoryviews rather
        # than arrays — materialize them so the pickle is self-contained
        # (the flat-buffer fallback when no store is active).
        indptr = self.indptr
        indices = self.indices
        if not isinstance(indptr, array):
            indptr = array("q", indptr)
        if not isinstance(indices, array):
            indices = array("q", indices)
        return (self.ids, indptr, indices)

    def __setstate__(
        self, state: Tuple[Tuple[int, ...], array, array]
    ) -> None:
        ids, indptr, indices = state
        self.ids = ids
        self.indptr = indptr
        self.indices = indices
        self.n = len(ids)
        self.m = len(indices) // 2
        self._index_of = None
        self._max_degree = None
        self._edges = None
        self._components = None

    def __reduce__(self):
        reducer = _SHARED_REDUCER
        if reducer is not None:
            reduced = reducer(self)
            if reduced is not None:
                return reduced
        return (_rebuild_csr, self.__getstate__())

    def __repr__(self) -> str:
        return f"<CSRTopology n={self.n} m={self.m}>"


def _rebuild_csr(
    ids: Tuple[int, ...], indptr: array, indices: array
) -> CSRTopology:
    """Unpickle helper (module-level so it is importable by workers)."""
    return CSRTopology(ids, indptr, indices)


def ensure_topology(graph: Any) -> CSRTopology:
    """The CSR view of ``graph``, building one for duck-typed graphs.

    :class:`~repro.graphs.graph.DistGraph` exposes its shared view via
    ``graph.csr``; any other object with ``nodes`` and ``neighbors(v)``
    (the engine's documented minimum surface) gets a fresh topology.
    """
    csr = getattr(graph, "csr", None)
    if isinstance(csr, CSRTopology):
        return csr
    return CSRTopology.from_adjacency(
        {node: graph.neighbors(node) for node in graph.nodes}
    )
