"""Identifier assignment schemes.

The paper's model gives nodes distinct identifiers from ``{1, ..., d}``
with ``d`` in ``n^{O(1)}``.  Identifier choice matters: the greedy
measure-uniform algorithms break symmetry by identifier comparison, so a
path whose ids increase monotonically is their worst case (one termination
per round — the matching upper-bound witness to the Ω(n) line lower bounds
of Lemmas 4, 5, 13 and 14).
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional

from repro.graphs.graph import DistGraph


def relabel(
    graph: DistGraph, mapping: Mapping[int, int], d: Optional[int] = None
) -> DistGraph:
    """Relabel nodes through a bijective ``old id -> new id`` mapping."""
    if set(mapping) != set(graph.nodes):
        raise ValueError("relabel mapping must cover exactly the graph's nodes")
    if len(set(mapping.values())) != graph.n:
        raise ValueError("relabel mapping must be injective")
    adjacency = {
        mapping[node]: [mapping[other] for other in graph.neighbors(node)]
        for node in graph.nodes
    }
    attrs = {
        mapping[node]: dict(graph.node_attrs(node))
        for node in graph.nodes
        if graph.node_attrs(node)
    }
    # Parent pointers must follow the relabeling.
    for new_attrs in attrs.values():
        if new_attrs.get("parent") is not None:
            new_attrs["parent"] = mapping[new_attrs["parent"]]
    return DistGraph(adjacency, d=d, attrs=attrs, name=graph.name)


def sequential_ids(graph: DistGraph) -> DistGraph:
    """Relabel to ids ``1..n`` in increasing order of current id."""
    mapping = {node: index + 1 for index, node in enumerate(graph.nodes)}
    return relabel(graph, mapping)


def random_ids_from_domain(graph: DistGraph, d: int, seed: int = 0) -> DistGraph:
    """Assign distinct random ids from ``{1, ..., d}``.

    ``d`` may far exceed ``n`` — this is how experiments probe dependence
    on the identifier-domain size (the log* d terms in the paper's bounds).
    """
    if d < graph.n:
        raise ValueError(f"domain size {d} below node count {graph.n}")
    rng = random.Random(f"{seed}:ids")
    new_ids = rng.sample(range(1, d + 1), graph.n)
    mapping = dict(zip(graph.nodes, new_ids))
    return relabel(graph, mapping, d=d)


def sorted_path_ids(graph: DistGraph, reverse: bool = False) -> DistGraph:
    """Assign ids increasing along a path instance (adversarial for greedy).

    With ids increasing along the path, the Greedy MIS Algorithm admits one
    new MIS node every other round starting from the large end, realizing
    its Θ(n) worst case.  Requires the instance to be a path; ``reverse``
    makes ids decrease instead.
    """
    endpoints = [v for v in graph.nodes if graph.degree(v) <= 1]
    if graph.n > 1 and (
        len(endpoints) != 2 or any(graph.degree(v) > 2 for v in graph.nodes)
    ):
        raise ValueError("sorted_path_ids requires a path instance")
    order = []
    if graph.n == 1:
        order = [graph.nodes[0]]
    elif graph.n > 1:
        current = min(endpoints)
        previous = None
        while current is not None:
            order.append(current)
            successors = [
                other for other in graph.neighbors(current) if other != previous
            ]
            previous = current
            current = successors[0] if successors else None
    if reverse:
        order.reverse()
    mapping: Dict[int, int] = {node: index + 1 for index, node in enumerate(order)}
    return relabel(graph, mapping)
