"""Sweep execution backends: serial and process-pool.

The process backend fans chunks of cells out over a
:class:`concurrent.futures.ProcessPoolExecutor`; the serial backend runs
the identical per-cell function in-process.  Because per-cell seeds are
fixed before dispatch (explicit or derived — see
:func:`repro.exec.plan.derive_cell_seed`) and cached artifacts are
immutable, the two backends produce row-for-row identical
:class:`~repro.exec.results.SweepResult` tables for the same sweep, and
any chunking of the process backend does too.

Chunked dispatch matters for throughput twice over: it amortizes the
pickle/IPC overhead of small cells, and — because chunks keep grid order,
which groups cells sharing a graph spec — it turns most per-worker
artifact-cache lookups into hits.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.runner import run
from repro.exec.cache import (
    ArtifactCache,
    configure_process_cache,
    process_cache,
)
from repro.exec.plan import Cell, FaultSpec, Spec, Sweep, derive_cell_seed
from repro.exec.results import CellResult, SweepResult


def execute(
    sweep: Sweep,
    *,
    backend: str = "process",
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
    cache_dir: Optional[str] = None,
    cache_size: int = 256,
) -> SweepResult:
    """Run every cell of ``sweep`` on the chosen backend."""
    if backend not in ("serial", "process"):
        raise ValueError(f"backend must be 'serial' or 'process', got {backend!r}")
    tagged = [
        (index, cell, _resolved_seed(sweep, index, cell))
        for index, cell in enumerate(sweep.cells)
    ]
    start = time.perf_counter()
    if backend == "serial" or len(tagged) <= 1:
        local_cache = cache or ArtifactCache(maxsize=cache_size, disk_dir=cache_dir)
        rows = [_execute_cell(index, cell, seed, local_cache) for index, cell, seed in tagged]
        stats = local_cache.stats()
    else:
        rows, stats = _execute_process_pool(
            tagged,
            jobs=jobs,
            chunk_size=chunk_size,
            cache_dir=cache_dir,
            cache_size=cache_size,
        )
    rows.sort(key=lambda row: row.index)
    return SweepResult(
        name=sweep.name,
        rows=rows,
        backend=backend,
        elapsed=time.perf_counter() - start,
        cache_stats=stats,
    )


def _resolved_seed(sweep: Sweep, index: int, cell: Cell) -> int:
    if cell.seed is not None:
        return cell.seed
    if cell.config.seed:
        return cell.config.seed
    return derive_cell_seed(sweep.base_seed, index, cell.label)


# ----------------------------------------------------------------------
# Per-cell execution (shared verbatim by both backends)
# ----------------------------------------------------------------------
def _execute_cell(
    index: int, cell: Cell, seed: int, cache: ArtifactCache
) -> CellResult:
    graph = cache.get_or_build(cell.graph.key, cell.graph.build)
    predictions = None
    if cell.predictions is not None:
        spec = cell.predictions
        predictions = cache.get_or_build(
            f"{spec.key}@{cell.graph.key}", lambda: spec.build(graph)
        )
    faults = cell.faults
    if isinstance(faults, FaultSpec):
        faults = faults.build(graph)
    elif isinstance(faults, Spec):  # a generic Spec used for faults
        faults = faults.build(graph)
    algorithm = cell.algorithm.build()
    config = cell.config.with_overrides(seed=seed)
    if faults is not None:
        config = config.with_overrides(faults=faults)
    result = run(algorithm, graph, predictions, config=config)

    problem = None
    valid = None
    error = None
    if cell.problem is not None:
        from repro.problems import get_problem

        problem = get_problem(cell.problem)
        valid = problem.is_solution(graph, result.outputs)
        if predictions is not None:
            from repro.errors import eta1

            error = eta1(graph, predictions, problem.name)
    ones = sum(1 for value in result.outputs.values() if value == 1)
    solution_size = (
        ones if problem is not None and problem.name == "mis" else len(result.outputs)
    )
    metrics: Dict[str, Any] = {}
    if cell.metrics is not None:
        metrics = dict(cell.metrics(problem, graph, predictions, result))
    return CellResult(
        index=index,
        label=cell.label,
        graph_name=graph.name,
        n=graph.n,
        seed=seed,
        rounds=result.rounds,
        rounds_executed=result.rounds_executed,
        valid=valid,
        error=error,
        message_count=result.message_count,
        dropped_messages=result.dropped_messages,
        stuck=result.stuck is not None,
        solution_size=solution_size,
        metrics=metrics,
    )


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------
def _init_worker(cache_size: int, cache_dir: Optional[str]) -> None:
    """Pool initializer: one artifact cache per worker process."""
    configure_process_cache(maxsize=cache_size, disk_dir=cache_dir)


def _run_chunk(
    chunk: Sequence[Tuple[int, Cell, int]]
) -> Tuple[List[CellResult], Dict[str, int]]:
    """Execute one chunk in a worker; returns rows + cache counters."""
    cache = process_cache()
    before = cache.stats()
    rows = [_execute_cell(index, cell, seed, cache) for index, cell, seed in chunk]
    after = cache.stats()
    delta = {key: after[key] - before.get(key, 0) for key in ("hits", "disk_hits", "misses")}
    return rows, delta


def _execute_process_pool(
    tagged: List[Tuple[int, Cell, int]],
    *,
    jobs: Optional[int],
    chunk_size: Optional[int],
    cache_dir: Optional[str],
    cache_size: int,
) -> Tuple[List[CellResult], Dict[str, int]]:
    workers = jobs or os.cpu_count() or 2
    workers = max(1, min(workers, len(tagged)))
    if chunk_size is None:
        # ~4 waves per worker balances scheduling slack against IPC cost.
        chunk_size = max(1, len(tagged) // (workers * 4) or 1)
    chunks = [tagged[i : i + chunk_size] for i in range(0, len(tagged), chunk_size)]
    rows: List[CellResult] = []
    stats: Dict[str, int] = {"hits": 0, "disk_hits": 0, "misses": 0}
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(cache_size, cache_dir),
        ) as pool:
            for chunk_rows, chunk_stats in pool.map(_run_chunk, chunks):
                rows.extend(chunk_rows)
                for key, value in chunk_stats.items():
                    stats[key] = stats.get(key, 0) + value
    except (OSError, PermissionError) as exc:
        # Sandboxes and restricted CI runners sometimes forbid spawning
        # worker processes; the sweep still completes, just serially.
        warnings.warn(
            f"process backend unavailable ({exc}); falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        cache = ArtifactCache(maxsize=cache_size, disk_dir=cache_dir)
        rows = [_execute_cell(index, cell, seed, cache) for index, cell, seed in tagged]
        stats = cache.stats()
    return rows, stats
