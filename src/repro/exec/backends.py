"""Sweep execution backends: serial and process-pool.

The process backend fans chunks of cells out over a
:class:`concurrent.futures.ProcessPoolExecutor`; the serial backend runs
the identical per-cell function in-process.  Because per-cell seeds are
fixed before dispatch (explicit or derived — see
:func:`repro.exec.plan.derive_cell_seed`) and cached artifacts are
immutable, the two backends produce row-for-row identical
:class:`~repro.exec.results.SweepResult` tables for the same sweep, and
any chunking of the process backend does too.

Chunked dispatch matters for throughput twice over: it amortizes the
pickle/IPC overhead of small cells, and — because chunks keep grid order,
which groups cells sharing a graph spec — it turns most per-worker
artifact-cache lookups into hits.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.runner import run
from repro.exec.cache import (
    ArtifactCache,
    configure_process_cache,
    process_cache,
)
from repro.exec.plan import Cell, FaultSpec, Spec, Sweep, derive_cell_seed
from repro.exec.results import CellResult, SweepResult
from repro.obs.events import MemoryEventSink, write_jsonl_events


def execute(
    sweep: Sweep,
    *,
    backend: str = "process",
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
    cache_dir: Optional[str] = None,
    cache_size: int = 256,
    profile: bool = False,
    events: bool = False,
    events_path: Optional[str] = None,
) -> SweepResult:
    """Run every cell of ``sweep`` on the chosen backend.

    With ``profile``, every cell runs with round profiling and its
    ``RoundProfile.summary()`` lands on the row.  With ``events`` (or an
    ``events_path``), every cell's structured events are captured; an
    ``events_path`` additionally writes them all — tagged with their
    cell label, in cell order — as one JSONL file.

    The returned :class:`SweepResult` records both the requested and the
    *effective* backend: a process-backend request runs serially for
    single-cell sweeps and on platforms that cannot spawn workers, and
    reports so instead of claiming parallelism it didn't have.
    """
    if backend not in ("serial", "process"):
        raise ValueError(f"backend must be 'serial' or 'process', got {backend!r}")
    if cache is not None and backend == "process":
        raise ValueError(
            "cache= is only honored by the serial backend (worker processes "
            "cannot share a live cache object); pass cache_dir= to share "
            "artifacts on disk, or use backend='serial'"
        )
    events = events or events_path is not None
    _warn_bare_controllers(sweep)
    tagged = [
        (index, cell, _resolved_seed(sweep, index, cell))
        for index, cell in enumerate(sweep.cells)
    ]
    start = time.perf_counter()
    if backend == "serial" or len(tagged) <= 1:
        effective = "serial"
        # ``is not None``, not truthiness: a fresh caller-supplied cache
        # is empty and ArtifactCache defines ``__len__``.
        local_cache = (
            cache
            if cache is not None
            else ArtifactCache(maxsize=cache_size, disk_dir=cache_dir)
        )
        rows = [
            _execute_cell(index, cell, seed, local_cache, profile, events)
            for index, cell, seed in tagged
        ]
        stats = local_cache.stats()
    else:
        rows, stats, effective = _execute_process_pool(
            tagged,
            jobs=jobs,
            chunk_size=chunk_size,
            cache_dir=cache_dir,
            cache_size=cache_size,
            profile=profile,
            events=events,
        )
    rows.sort(key=lambda row: row.index)
    result = SweepResult(
        name=sweep.name,
        rows=rows,
        backend=effective,
        requested_backend=backend,
        elapsed=time.perf_counter() - start,
        cache_stats=stats,
    )
    if events_path is not None:
        _write_sweep_events(events_path, rows)
    return result


def _warn_bare_controllers(sweep: Sweep) -> None:
    """Warn (once per sweep) when a cell carries a bare fault controller.

    The engine already deprecates ``faults=<controller instance>``, but
    when the cell runs inside a pool worker that warning fires in the
    worker process and never reaches the caller's terminal or an
    ``-W error::DeprecationWarning`` test run.  Surfacing it here, on
    the parent side before dispatch, keeps the sweep path as loud as the
    direct ``run()`` path.
    """
    for cell in sweep.cells:
        for faults in (cell.faults, cell.config.faults):
            if (
                faults is not None
                and not isinstance(faults, Spec)
                and not hasattr(faults, "build_controller")
            ):
                warnings.warn(
                    "passing a bare fault controller as faults= is "
                    "deprecated; pass a FaultPlan (or any object with a "
                    "build_controller() factory) instead "
                    f"(sweep cell {cell.label!r})",
                    DeprecationWarning,
                    stacklevel=3,
                )
                return


def _write_sweep_events(path: str, rows: List[CellResult]) -> None:
    """Serialize every row's captured events as one JSONL file."""
    # Truncate first: write_jsonl_events appends per cell.
    open(path, "w", encoding="utf-8").close()
    for row in rows:
        if row.events:
            write_jsonl_events(path, row.events, cell=row.label)


def _resolved_seed(sweep: Sweep, index: int, cell: Cell) -> int:
    """The seed a cell runs with: explicit beats configured beats derived.

    ``seed=0`` is a real seed at either level — only ``None`` (unset)
    falls through to the derived per-cell seed.
    """
    if cell.seed is not None:
        return cell.seed
    if cell.config.seed is not None:
        return cell.config.seed
    return derive_cell_seed(sweep.base_seed, index, cell.label)


# ----------------------------------------------------------------------
# Per-cell execution (shared verbatim by both backends)
# ----------------------------------------------------------------------
def _execute_cell(
    index: int,
    cell: Cell,
    seed: int,
    cache: ArtifactCache,
    profile: bool = False,
    events: bool = False,
) -> CellResult:
    cell_start = time.perf_counter()
    graph = cache.get_or_build(cell.graph.key, cell.graph.build)
    predictions = None
    if cell.predictions is not None:
        spec = cell.predictions
        predictions = cache.get_or_build(
            f"{spec.key}@{cell.graph.key}", lambda: spec.build(graph)
        )
    faults = cell.faults
    if isinstance(faults, FaultSpec):
        faults = faults.build(graph)
    elif isinstance(faults, Spec):  # a generic Spec used for faults
        faults = faults.build(graph)
    algorithm = cell.algorithm.build()
    config = cell.config.with_overrides(seed=seed)
    if faults is not None:
        config = config.with_overrides(faults=faults)
    if profile:
        config = config.with_overrides(profile=True)
    sink = MemoryEventSink() if events else None
    result = run(
        algorithm,
        graph,
        predictions,
        config=config,
        sinks=[sink] if sink is not None else None,
    )

    problem = None
    valid = None
    error = None
    if cell.problem is not None:
        from repro.problems import get_problem

        problem = get_problem(cell.problem)
        valid = problem.is_solution(graph, result.outputs)
        if predictions is not None:
            from repro.errors import eta1

            error = eta1(graph, predictions, problem.name)
    from repro.problems import solution_size as _solution_size

    metrics: Dict[str, Any] = {}
    if cell.metrics is not None:
        metrics = dict(cell.metrics(problem, graph, predictions, result))
    return CellResult(
        index=index,
        label=cell.label,
        graph_name=graph.name,
        n=graph.n,
        seed=seed,
        rounds=result.rounds,
        rounds_executed=result.rounds_executed,
        valid=valid,
        error=error,
        message_count=result.message_count,
        dropped_messages=result.dropped_messages,
        delayed_messages=result.delayed_messages,
        retried_messages=result.retried_messages,
        kernel=getattr(result, "kernel", None),
        stuck=result.stuck is not None,
        solution_size=_solution_size(
            result.outputs, problem.name if problem is not None else None
        ),
        metrics=metrics,
        elapsed=time.perf_counter() - cell_start,
        profile=result.profile.summary() if result.profile is not None else None,
        events=sink.entries if sink is not None else None,
    )


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------
def _init_worker(cache_size: int, cache_dir: Optional[str]) -> None:
    """Pool initializer: one artifact cache per worker process."""
    configure_process_cache(maxsize=cache_size, disk_dir=cache_dir)


def _run_chunk(
    task: Tuple[Sequence[Tuple[int, Cell, int]], bool, bool]
) -> Tuple[List[CellResult], Dict[str, int]]:
    """Execute one chunk in a worker; returns rows + cache counters."""
    chunk, profile, events = task
    cache = process_cache()
    before = cache.stats()
    rows = [
        _execute_cell(index, cell, seed, cache, profile, events)
        for index, cell, seed in chunk
    ]
    after = cache.stats()
    delta = {key: after[key] - before.get(key, 0) for key in ("hits", "disk_hits", "misses")}
    return rows, delta


def _failed_cell_result(
    index: int, cell: Cell, seed: int, exc: BaseException
) -> CellResult:
    """A placeholder row for a cell whose worker died (twice).

    Every run-derived field is zero/``None``; ``failure`` records the
    exception so the sweep table stays complete and diagnosable instead
    of silently dropping the cell.
    """
    return CellResult(
        index=index,
        label=cell.label,
        graph_name="",
        n=0,
        seed=seed,
        rounds=0,
        rounds_executed=0,
        failure=f"{type(exc).__name__}: {exc}",
    )


def _drain_pool(
    chunks: List[Tuple[Sequence[Tuple[int, Cell, int]], bool, bool]],
    workers: int,
    cache_size: int,
    cache_dir: Optional[str],
    rows: List[CellResult],
    stats: Dict[str, int],
) -> List[Tuple[Sequence[Tuple[int, Cell, int]], BaseException]]:
    """Run chunks on one fresh pool, collecting into ``rows``/``stats``.

    Returns the chunks (with the exception) whose workers the pool lost
    — a crashed worker poisons the whole executor, so every not-yet-run
    chunk surfaces as :class:`BrokenProcessPool` while already-completed
    chunks keep their results.
    """
    lost: List[Tuple[Sequence[Tuple[int, Cell, int]], BaseException]] = []
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(cache_size, cache_dir),
    ) as pool:
        futures = {}
        try:
            for chunk in chunks:
                futures[pool.submit(_run_chunk, chunk)] = chunk
        except BrokenProcessPool as exc:
            # The pool died while submissions were still going in; every
            # chunk that never made it to a worker is lost as well.
            lost.extend((chunk[0], exc) for chunk in chunks[len(futures):])
        for future in as_completed(futures):
            chunk = futures[future]
            try:
                chunk_rows, chunk_stats = future.result()
            except BrokenProcessPool as exc:
                lost.append((chunk[0], exc))
                continue
            rows.extend(chunk_rows)
            for key, value in chunk_stats.items():
                stats[key] = stats.get(key, 0) + value
    return lost


def _execute_process_pool(
    tagged: List[Tuple[int, Cell, int]],
    *,
    jobs: Optional[int],
    chunk_size: Optional[int],
    cache_dir: Optional[str],
    cache_size: int,
    profile: bool = False,
    events: bool = False,
) -> Tuple[List[CellResult], Dict[str, int], str]:
    """Rows, cache counters and the backend that actually ran them."""
    workers = jobs or os.cpu_count() or 2
    workers = max(1, min(workers, len(tagged)))
    if chunk_size is None:
        # ~4 waves per worker balances scheduling slack against IPC cost.
        chunk_size = max(1, len(tagged) // (workers * 4) or 1)
    chunks = [
        (tagged[i : i + chunk_size], profile, events)
        for i in range(0, len(tagged), chunk_size)
    ]
    rows: List[CellResult] = []
    stats: Dict[str, int] = {"hits": 0, "disk_hits": 0, "misses": 0}
    effective = "process"
    try:
        lost = _drain_pool(chunks, workers, cache_size, cache_dir, rows, stats)
        if lost:
            # A worker died and took the pool with it.  The completed
            # chunks' rows are already collected; retry only the lost
            # cells, once, each on its own fresh single-worker pool —
            # isolation, so a permanently-poisonous cell can neither
            # sink its chunk-mates nor the other cells being retried.
            retry_cells = [cell for chunk, _ in lost for cell in chunk]
            warnings.warn(
                f"a sweep worker died ({lost[0][1]}); retrying "
                f"{len(retry_cells)} affected cell(s) on a fresh pool",
                RuntimeWarning,
                stacklevel=3,
            )
            for tag in retry_cells:
                still_lost = _drain_pool(
                    [([tag], profile, events)], 1, cache_size, cache_dir,
                    rows, stats,
                )
                for chunk, exc in still_lost:
                    for index, cell, seed in chunk:
                        rows.append(_failed_cell_result(index, cell, seed, exc))
    except (OSError, PermissionError) as exc:
        # Sandboxes and restricted CI runners sometimes forbid spawning
        # worker processes; the sweep still completes, just serially —
        # and the result says so (``backend="serial"``).
        warnings.warn(
            f"process backend unavailable ({exc}); falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        effective = "serial"
        cache = ArtifactCache(maxsize=cache_size, disk_dir=cache_dir)
        rows = [
            _execute_cell(index, cell, seed, cache, profile, events)
            for index, cell, seed in tagged
        ]
        stats = cache.stats()
    return rows, stats, effective
