"""Sweep execution backends: serial and process-pool.

The process backend fans chunks of cells out over a
:class:`concurrent.futures.ProcessPoolExecutor`; the serial backend runs
the identical per-cell function in-process.  Because per-cell seeds are
fixed before dispatch (explicit or derived — see
:func:`repro.exec.plan.derive_cell_seed`) and cached artifacts are
immutable, the two backends produce row-for-row identical
:class:`~repro.exec.results.SweepResult` tables for the same sweep, and
any chunking of the process backend does too.

Chunked dispatch matters for throughput twice over: it amortizes the
pickle/IPC overhead of small cells, and — because chunks keep grid order,
which groups cells sharing a graph spec — it turns most per-worker
artifact-cache lookups into hits.

Two :class:`~repro.core.runner.ExecutionPolicy` knobs change what a
dispatched work item *is*:

* ``share_graph=True`` — the process backend activates a
  :class:`~repro.shard.store.SharedCSRStore` around dispatch, so every
  CSR topology crossing the pool boundary ships once as a shared-memory
  segment and each cell pickles down to a ~100-byte handle (measured
  into the rows' ``ship_bytes``/``shared_bytes`` columns).
* ``shard="components"`` — eligible cells (see
  :func:`repro.shard.plan.shard_mode`) expand into one work item per
  component shard, spreading a single huge-graph cell across the pool;
  the partials merge back into one bit-identical row.
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Dict, List, Optional, Tuple

from repro.core.runner import run
from repro.exec.cache import (
    ArtifactCache,
    configure_process_cache,
    process_cache,
)
from repro.exec.plan import Cell, FaultSpec, Spec, Sweep, derive_cell_seed
from repro.exec.results import CellResult, SweepResult
from repro.obs.events import MemoryEventSink, write_jsonl_events
from repro.shard.edgecut import execute_edgecut_cell
from repro.shard.plan import (
    ShardPartial,
    execute_shard,
    merge_partials,
    shard_mode,
)
from repro.shard.store import SharedCSRStore, reset_worker_state

#: A dispatched unit of work: an entire cell, or one component shard.
#: ``("cell", index, cell, seed)`` /
#: ``("shard", index, cell, seed, shard, shard_count)``.
#: ``shard="edgecut"`` cells never become pool items — their shards are
#: coupled by a per-round barrier, so they run as one unit (threads on
#: the serial backend, dedicated processes driven by the parent on the
#: process backend; see :mod:`repro.shard.edgecut`).
WorkItem = Tuple[Any, ...]


def execute(
    sweep: Sweep,
    *,
    backend: str = "process",
    jobs: Optional[int] = None,
    chunk_size: Optional[int] = None,
    cache: Optional[ArtifactCache] = None,
    cache_dir: Optional[str] = None,
    cache_size: int = 256,
    profile: bool = False,
    events: bool = False,
    events_path: Optional[str] = None,
) -> SweepResult:
    """Run every cell of ``sweep`` on the chosen backend.

    With ``profile``, every cell runs with round profiling and its
    ``RoundProfile.summary()`` lands on the row.  With ``events`` (or an
    ``events_path``), every cell's structured events are captured; an
    ``events_path`` additionally writes them all — tagged with their
    cell label, in cell order — as one JSONL file.

    The returned :class:`SweepResult` records both the requested and the
    *effective* backend: a process-backend request runs serially for
    single-cell sweeps and on platforms that cannot spawn workers, and
    reports so instead of claiming parallelism it didn't have.
    """
    if backend not in ("serial", "process"):
        raise ValueError(f"backend must be 'serial' or 'process', got {backend!r}")
    if cache is not None and backend == "process":
        raise ValueError(
            "cache= is only honored by the serial backend (worker processes "
            "cannot share a live cache object); pass cache_dir= to share "
            "artifacts on disk, or use backend='serial'"
        )
    events = events or events_path is not None
    _warn_bare_controllers(sweep)
    _warn_unshardable(sweep, profile=profile, events=events)
    tagged = [
        (index, cell, _resolved_seed(sweep, index, cell))
        for index, cell in enumerate(sweep.cells)
    ]
    shard_count = max(1, jobs or os.cpu_count() or 2)
    start = time.perf_counter()
    shared_bytes = 0
    if backend == "serial" or len(tagged) <= 1:
        effective = "serial"
        # ``is not None``, not truthiness: a fresh caller-supplied cache
        # is empty and ArtifactCache defines ``__len__``.
        local_cache = (
            cache
            if cache is not None
            else ArtifactCache(maxsize=cache_size, disk_dir=cache_dir)
        )
        rows = [
            _execute_cell_any(
                index, cell, seed, local_cache, profile, events, shard_count
            )
            for index, cell, seed in tagged
        ]
        stats = local_cache.stats()
    else:
        store = None
        if any(cell.config.policy.share_graph for _, cell, _ in tagged):
            store = SharedCSRStore(directory=cache_dir)
        try:
            if store is not None:
                store.activate()
            rows, stats, effective = _execute_process_pool(
                tagged,
                jobs=jobs,
                chunk_size=chunk_size,
                cache_dir=cache_dir,
                cache_size=cache_size,
                profile=profile,
                events=events,
                shard_count=shard_count,
                store=store,
            )
            if store is not None:
                shared_bytes = store.total_bytes
        finally:
            if store is not None:
                store.close()
    rows.sort(key=lambda row: row.index)
    result = SweepResult(
        name=sweep.name,
        rows=rows,
        backend=effective,
        requested_backend=backend,
        elapsed=time.perf_counter() - start,
        cache_stats=stats,
        shared_bytes=shared_bytes,
    )
    if events_path is not None:
        _write_sweep_events(events_path, rows)
    return result


def _warn_bare_controllers(sweep: Sweep) -> None:
    """Warn (once per sweep) when a cell carries a bare fault controller.

    The engine already deprecates ``faults=<controller instance>``, but
    when the cell runs inside a pool worker that warning fires in the
    worker process and never reaches the caller's terminal or an
    ``-W error::DeprecationWarning`` test run.  Surfacing it here, on
    the parent side before dispatch, keeps the sweep path as loud as the
    direct ``run()`` path.
    """
    for cell in sweep.cells:
        for faults in (cell.faults, cell.config.faults):
            if (
                faults is not None
                and not isinstance(faults, Spec)
                and not hasattr(faults, "build_controller")
            ):
                warnings.warn(
                    "passing a bare fault controller as faults= is "
                    "deprecated; pass a FaultPlan (or any object with a "
                    "build_controller() factory) instead "
                    f"(sweep cell {cell.label!r})",
                    DeprecationWarning,
                    stacklevel=3,
                )
                return


def _warn_unshardable(sweep: Sweep, *, profile: bool, events: bool) -> None:
    """Warn (once per sweep) when ``shard=`` is requested but gated off.

    Fault plans, custom metrics, profiling and event capture all need
    the whole graph in one engine; such cells silently running unsharded
    would misreport the sweep's parallelism, so say it out loud.
    """
    for cell in sweep.cells:
        if (
            cell.config.policy.shard is not None
            and shard_mode(cell, profile=profile, events=events) is None
        ):
            warnings.warn(
                f"cell {cell.label!r} requested shard="
                f"{cell.config.policy.shard!r} but carries a feature that "
                "needs the whole graph in one engine (faults, custom "
                "metrics, profiling or event capture); running unsharded",
                RuntimeWarning,
                stacklevel=3,
            )
            return


def _write_sweep_events(path: str, rows: List[CellResult]) -> None:
    """Serialize every row's captured events as one JSONL file."""
    # Truncate first: write_jsonl_events appends per cell.
    open(path, "w", encoding="utf-8").close()
    for row in rows:
        if row.events:
            write_jsonl_events(path, row.events, cell=row.label)


def _resolved_seed(sweep: Sweep, index: int, cell: Cell) -> int:
    """The seed a cell runs with: explicit beats configured beats derived.

    ``seed=0`` is a real seed at either level — only ``None`` (unset)
    falls through to the derived per-cell seed.
    """
    if cell.seed is not None:
        return cell.seed
    if cell.config.seed is not None:
        return cell.config.seed
    return derive_cell_seed(sweep.base_seed, index, cell.label)


# ----------------------------------------------------------------------
# Per-cell execution (shared verbatim by both backends)
# ----------------------------------------------------------------------
def _execute_cell(
    index: int,
    cell: Cell,
    seed: int,
    cache: ArtifactCache,
    profile: bool = False,
    events: bool = False,
) -> CellResult:
    cell_start = time.perf_counter()
    graph = cache.get_or_build(cell.graph.key, cell.graph.build)
    predictions = None
    if cell.predictions is not None:
        spec = cell.predictions
        predictions = cache.get_or_build(
            f"{spec.key}@{cell.graph.key}", lambda: spec.build(graph)
        )
    faults = cell.faults
    if isinstance(faults, FaultSpec):
        faults = faults.build(graph)
    elif isinstance(faults, Spec):  # a generic Spec used for faults
        faults = faults.build(graph)
    algorithm = cell.algorithm.build()
    config = cell.config.with_overrides(seed=seed)
    if faults is not None:
        config = config.with_overrides(faults=faults)
    if profile:
        config = config.with_overrides(profile=True)
    sink = MemoryEventSink() if events else None
    result = run(
        algorithm,
        graph,
        predictions,
        config=config,
        sinks=[sink] if sink is not None else None,
    )

    problem = None
    valid = None
    error = None
    if cell.problem is not None:
        from repro.problems import get_problem

        problem = get_problem(cell.problem)
        valid = problem.is_solution(graph, result.outputs)
        if predictions is not None:
            from repro.errors import eta1

            error = eta1(graph, predictions, problem.name)
    from repro.problems import solution_size as _solution_size

    metrics: Dict[str, Any] = {}
    if cell.metrics is not None:
        metrics = dict(cell.metrics(problem, graph, predictions, result))
    return CellResult(
        index=index,
        label=cell.label,
        graph_name=graph.name,
        n=graph.n,
        seed=seed,
        rounds=result.rounds,
        rounds_executed=result.rounds_executed,
        valid=valid,
        error=error,
        message_count=result.message_count,
        dropped_messages=result.dropped_messages,
        delayed_messages=result.delayed_messages,
        retried_messages=result.retried_messages,
        kernel=getattr(result, "kernel", None),
        stuck=result.stuck is not None,
        solution_size=_solution_size(
            result.outputs, problem.name if problem is not None else None
        ),
        metrics=metrics,
        elapsed=time.perf_counter() - cell_start,
        profile=result.profile.summary() if result.profile is not None else None,
        events=sink.entries if sink is not None else None,
    )


def _execute_cell_any(
    index: int,
    cell: Cell,
    seed: int,
    cache: ArtifactCache,
    profile: bool,
    events: bool,
    shard_count: int,
) -> CellResult:
    """One cell on the current process: sharded (run + merge in place)
    when its policy and features allow, unsharded otherwise.

    The serial spelling of the sharded path — same split, same merge —
    so ``backend="serial"`` stays row-for-row identical to the pool and
    the differential fuzz can compare all four combinations cheaply.
    """
    mode = shard_mode(cell, profile=profile, events=events)
    if mode is None:
        return _execute_cell(index, cell, seed, cache, profile, events)
    if mode == "edgecut":
        return _execute_edgecut_any(
            index, cell, seed, cache, shard_count, "thread", profile, events
        )
    partials = [
        execute_shard(index, cell, seed, shard, shard_count, cache)
        for shard in range(shard_count)
    ]
    return merge_partials(index, cell, seed, partials)


def _execute_edgecut_any(
    index: int,
    cell: Cell,
    seed: int,
    cache: ArtifactCache,
    shard_count: int,
    mode: str,
    profile: bool,
    events: bool,
) -> CellResult:
    """One ``shard="edgecut"`` cell, degrading gracefully to unsharded.

    A single shard (``jobs=1``) or a trace request needs the whole graph
    in one engine anyway, so those cells take the ordinary path; the
    process mode additionally falls back to in-process threads when the
    platform cannot spawn workers (same contract as the pool itself).
    """
    if shard_count < 2 or cell.config.trace:
        return _execute_cell(index, cell, seed, cache, profile, events)
    if mode == "process":
        try:
            return execute_edgecut_cell(
                index, cell, seed, shard_count, mode="process", cache=cache
            )
        except (OSError, PermissionError) as exc:
            warnings.warn(
                f"edge-cut shard processes unavailable ({exc}); "
                f"running cell {cell.label!r} on in-process threads",
                RuntimeWarning,
                stacklevel=2,
            )
    return execute_edgecut_cell(
        index, cell, seed, shard_count, mode="thread", cache=cache
    )


# ----------------------------------------------------------------------
# Process-pool backend
# ----------------------------------------------------------------------
def _init_worker(cache_size: int, cache_dir: Optional[str]) -> None:
    """Pool initializer: one artifact cache per worker process.

    Also clears any fork-inherited :class:`SharedCSRStore` reduce hook —
    workers attach segments, they must never publish them.
    """
    reset_worker_state()
    configure_process_cache(maxsize=cache_size, disk_dir=cache_dir)


def _execute_item(item: WorkItem, cache: ArtifactCache) -> Any:
    """One work item in a worker: a full cell row, or a shard partial."""
    kind = item[0]
    if kind == "cell":
        _, index, cell, seed, profile, events = item
        return _execute_cell(index, cell, seed, cache, profile, events)
    _, index, cell, seed, shard, shard_count = item
    return execute_shard(index, cell, seed, shard, shard_count, cache)


def _run_chunk(
    task: Tuple[List[WorkItem], ...]
) -> Tuple[List[Any], Dict[str, int]]:
    """Execute one chunk in a worker; returns outputs + cache counters.

    Outputs are heterogeneous — :class:`CellResult` rows for ``"cell"``
    items, :class:`ShardPartial` for ``"shard"`` items; the parent
    separates and merges.
    """
    (items,) = task
    cache = process_cache()
    before = cache.stats()
    outputs = [_execute_item(item, cache) for item in items]
    after = cache.stats()
    delta = {
        key: after[key] - before.get(key, 0)
        for key in ("hits", "disk_hits", "misses", "corrupt")
    }
    return outputs, delta


def _failed_cell_result(item: WorkItem, exc: BaseException) -> CellResult:
    """A placeholder row for a work item whose worker died (twice).

    Every run-derived field is zero/``None``; ``failure`` records the
    exception so the sweep table stays complete and diagnosable instead
    of silently dropping the cell.  A failed *shard* fails its whole
    cell — partial rows would not be comparable.
    """
    _kind, index, cell, seed = item[:4]
    return CellResult(
        index=index,
        label=cell.label,
        graph_name="",
        n=0,
        seed=seed,
        rounds=0,
        rounds_executed=0,
        failure=f"{type(exc).__name__}: {exc}",
    )


def _drain_pool(
    chunks: List[Tuple[List[WorkItem]]],
    workers: int,
    cache_size: int,
    cache_dir: Optional[str],
    outputs: List[Any],
    stats: Dict[str, int],
) -> List[Tuple[List[WorkItem], BaseException]]:
    """Run chunks on one fresh pool, collecting into ``outputs``/``stats``.

    Returns the chunks (with the exception) whose workers the pool lost
    — a crashed worker poisons the whole executor, so every not-yet-run
    chunk surfaces as :class:`BrokenProcessPool` while already-completed
    chunks keep their results.
    """
    lost: List[Tuple[List[WorkItem], BaseException]] = []
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_worker,
        initargs=(cache_size, cache_dir),
    ) as pool:
        futures = {}
        try:
            for chunk in chunks:
                futures[pool.submit(_run_chunk, chunk)] = chunk
        except BrokenProcessPool as exc:
            # The pool died while submissions were still going in; every
            # chunk that never made it to a worker is lost as well.
            lost.extend((chunk[0], exc) for chunk in chunks[len(futures):])
        for future in as_completed(futures):
            chunk = futures[future]
            try:
                chunk_outputs, chunk_stats = future.result()
            except BrokenProcessPool as exc:
                lost.append((chunk[0], exc))
                continue
            outputs.extend(chunk_outputs)
            for key, value in chunk_stats.items():
                stats[key] = stats.get(key, 0) + value
    return lost


def _expand_items(
    tagged: List[Tuple[int, Cell, int]],
    shard_count: int,
    profile: bool,
    events: bool,
) -> List[WorkItem]:
    """Work items in grid order: one per cell, or one per shard for
    component-shardable cells (sharding only pays off across ≥ 2
    workers).  Edge-cut cells are absent by construction — the caller
    routes them to the parent-driven barrier execution instead."""
    items: List[WorkItem] = []
    for index, cell, seed in tagged:
        if shard_mode(cell, profile=profile, events=events) == "components":
            items.extend(
                ("shard", index, cell, seed, shard, shard_count)
                for shard in range(shard_count)
            )
        else:
            items.append(("cell", index, cell, seed, profile, events))
    return items


def _measure_shipping(
    items: List[WorkItem], store: SharedCSRStore
) -> Dict[int, int]:
    """Per-cell dispatched-pickle bytes, measured under the active store.

    The measurement pickle is also the store's publication pass: the
    first ``dumps`` of each topology creates its segment, so by the time
    the pool pickles the same items only handles cross the boundary.
    Only taken when a store is active — the handles make it cheap; with
    flat buffers it would double the dominant serialization cost.
    """
    ship: Dict[int, int] = {}
    for item in items:
        index = item[1]
        size = len(pickle.dumps(item, protocol=pickle.HIGHEST_PROTOCOL))
        ship[index] = ship.get(index, 0) + size
    return ship


def _shared_bytes_for(cell: Cell, store: SharedCSRStore) -> Optional[int]:
    """Segment bytes behind the cell's literal graph, if published."""
    csr = getattr(cell.graph.value, "csr", None)
    if csr is None:
        return None
    handle = store.handle_for(csr)
    return handle.nbytes if handle is not None else None


def _collect_rows(
    tagged: List[Tuple[int, Cell, int]],
    outputs: List[Any],
    failed: List[CellResult],
) -> List[CellResult]:
    """Fold worker outputs into final rows: pass cell rows through,
    merge shard partials per cell, let a failed shard fail its cell."""
    rows: List[CellResult] = []
    partials: Dict[int, List[ShardPartial]] = {}
    for output in outputs:
        if isinstance(output, ShardPartial):
            partials.setdefault(output.index, []).append(output)
        else:
            rows.append(output)
    failed_indexes = {row.index for row in failed}
    by_index = {index: (cell, seed) for index, cell, seed in tagged}
    for index, parts in partials.items():
        if index in failed_indexes:
            continue  # a lost shard already failed the whole cell
        cell, seed = by_index[index]
        rows.append(merge_partials(index, cell, seed, parts))
    seen = {row.index for row in rows}
    rows.extend(row for row in failed if row.index not in seen)
    return rows


def _execute_process_pool(
    tagged: List[Tuple[int, Cell, int]],
    *,
    jobs: Optional[int],
    chunk_size: Optional[int],
    cache_dir: Optional[str],
    cache_size: int,
    profile: bool = False,
    events: bool = False,
    shard_count: int = 1,
    store: Optional[SharedCSRStore] = None,
) -> Tuple[List[CellResult], Dict[str, int], str]:
    """Rows, cache counters and the backend that actually ran them."""
    workers = jobs or os.cpu_count() or 2
    workers = max(1, min(workers, len(tagged)))
    edgecut_indexes = {
        index
        for index, cell, _ in tagged
        if shard_mode(cell, profile=profile, events=events) == "edgecut"
    }
    edgecut_tagged = [e for e in tagged if e[0] in edgecut_indexes]
    pool_tagged = [e for e in tagged if e[0] not in edgecut_indexes]
    items = _expand_items(pool_tagged, shard_count, profile, events)
    ship = _measure_shipping(items, store) if store is not None else {}
    if chunk_size is None:
        # ~4 waves per worker balances scheduling slack against IPC cost.
        chunk_size = max(1, len(items) // (workers * 4) or 1)
    chunks = [
        (items[i : i + chunk_size],)
        for i in range(0, len(items), chunk_size)
    ]
    outputs: List[Any] = []
    failed: List[CellResult] = []
    stats: Dict[str, int] = {
        "hits": 0, "disk_hits": 0, "misses": 0, "corrupt": 0,
    }
    effective = "process"
    try:
        lost = _drain_pool(
            chunks, workers, cache_size, cache_dir, outputs, stats
        )
        if lost:
            # A worker died and took the pool with it.  The completed
            # chunks' outputs are already collected; retry only the lost
            # items, once, each on its own fresh single-worker pool —
            # isolation, so a permanently-poisonous cell can neither
            # sink its chunk-mates nor the other cells being retried.
            retry_items = [item for chunk, _ in lost for item in chunk]
            warnings.warn(
                f"a sweep worker died ({lost[0][1]}); retrying "
                f"{len(retry_items)} affected work item(s) on a fresh pool",
                RuntimeWarning,
                stacklevel=3,
            )
            for item in retry_items:
                still_lost = _drain_pool(
                    [([item],)], 1, cache_size, cache_dir, outputs, stats
                )
                for chunk, exc in still_lost:
                    failed.extend(
                        _failed_cell_result(lost_item, exc)
                        for lost_item in chunk
                    )
        rows = _collect_rows(pool_tagged, outputs, failed)
        if edgecut_tagged:
            # Edge-cut cells run here in the parent: their shards are one
            # barrier-coupled unit (dedicated worker processes, parent as
            # router), not independent pool items.
            parent_cache = ArtifactCache(maxsize=cache_size, disk_dir=cache_dir)
            rows.extend(
                _execute_edgecut_any(
                    index, cell, seed, parent_cache, shard_count,
                    "process", profile, events,
                )
                for index, cell, seed in edgecut_tagged
            )
            for key, value in parent_cache.stats().items():
                stats[key] = stats.get(key, 0) + value
        if store is not None:
            # Tagged is enumerate-ordered, so ``tagged[i] == (i, cell, seed)``.
            for row in rows:
                if row.failure is not None:
                    continue
                row.ship_bytes = ship.get(row.index)
                row.shared_bytes = _shared_bytes_for(tagged[row.index][1], store)
    except (OSError, PermissionError) as exc:
        # Sandboxes and restricted CI runners sometimes forbid spawning
        # worker processes; the sweep still completes, just serially —
        # and the result says so (``backend="serial"``).
        warnings.warn(
            f"process backend unavailable ({exc}); falling back to serial",
            RuntimeWarning,
            stacklevel=2,
        )
        effective = "serial"
        cache = ArtifactCache(maxsize=cache_size, disk_dir=cache_dir)
        rows = [
            _execute_cell_any(
                index, cell, seed, cache, profile, events, shard_count
            )
            for index, cell, seed in tagged
        ]
        stats = cache.stats()
    return rows, stats, effective
