"""Sweep results: per-cell rows and whole-sweep aggregation.

A :class:`CellResult` is the flat, picklable record a worker sends back
for one cell — everything the benchmark tables need (rounds, validity,
error, fault counters, custom metrics) without dragging the full
:class:`~repro.simulator.metrics.RunResult` across the process boundary.
:class:`SweepResult` collects the rows in cell order, whatever backend or
chunking produced them, so serial and process-parallel executions of the
same sweep compare equal row-for-row.

:data:`CELL_COLUMNS` is the canonical per-cell column registry: one
entry per exported column, in export order.  The sweep CSV header, the
bench baseline cells (``repro.obs.bench``) and the determinism-compared
column set are all derived from it, so adding a counter (as PRs 5–7 did
with ``delayed``/``retried``/``kernel``) is a one-line change here
instead of three hand-maintained lists drifting apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


@dataclass(frozen=True)
class CellColumn:
    """One canonical per-cell export column.

    Attributes:
        name: Column name in CSV headers and baseline cell documents.
        attr: The :class:`CellResult` attribute the value comes from.
        compare: Whether the bench diff treats a changed value as a
            determinism break (see ``repro.obs.bench.diff_payloads``).
        default: Value used when a (pickled, older) row lacks the
            attribute — also the value older baselines implicitly carry.
        semantic: Whether the column describes the run's *outcome*
            (included in :meth:`CellResult.as_tuple`, hence in
            backend/shard equivalence checks) rather than transport
            provenance — shard counts and ship/shared byte measurements
            legitimately differ between backends that produced
            identical results.
    """

    name: str
    attr: str
    compare: bool = False
    default: Any = None
    semantic: bool = True

    def value_of(self, row: Any) -> Any:
        """The column's value on one row (``default`` if absent)."""
        return getattr(row, self.attr, self.default)


#: Canonical per-cell columns, in export (CSV) order.
CELL_COLUMNS: Tuple[CellColumn, ...] = (
    CellColumn("label", "label"),
    CellColumn("graph", "graph_name"),
    CellColumn("n", "n", default=0),
    CellColumn("seed", "seed", compare=True, default=0),
    CellColumn("rounds", "rounds", compare=True, default=0),
    CellColumn("rounds_executed", "rounds_executed", compare=True, default=0),
    CellColumn("valid", "valid"),
    CellColumn("error", "error"),
    CellColumn("messages", "message_count", compare=True, default=0),
    CellColumn("dropped", "dropped_messages", default=0),
    CellColumn("delayed", "delayed_messages", compare=True, default=0),
    CellColumn("retried", "retried_messages", compare=True, default=0),
    CellColumn("kernel", "kernel", compare=True),
    CellColumn("epoch", "epoch", compare=True),
    CellColumn("recourse", "recourse", compare=True),
    CellColumn("scratch_rounds", "scratch_rounds", compare=True),
    CellColumn("stuck", "stuck", default=False),
    CellColumn("solution_size", "solution_size", default=0),
    CellColumn("shards", "shards", semantic=False),
    CellColumn("shared_bytes", "shared_bytes", semantic=False),
    CellColumn("ship_bytes", "ship_bytes", semantic=False),
    CellColumn("boundary_msgs", "boundary_msgs", semantic=False),
    CellColumn("boundary_bytes", "boundary_bytes", semantic=False),
    CellColumn("failure", "failure"),
)

#: Names of the columns whose per-cell change is a determinism break.
COMPARE_COLUMNS: Tuple[str, ...] = tuple(
    column.name for column in CELL_COLUMNS if column.compare
)


@dataclass
class CellResult:
    """Executed outcome of one sweep cell.

    Attributes:
        index: Position of the cell in the sweep (rows are sorted by it).
        label: The cell's label.
        graph_name: Name of the built instance.
        n: Number of nodes of the instance.
        seed: The seed the run actually used (explicit or derived).
        rounds: Last-termination round — the paper's measure.
        rounds_executed: Rounds the engine ran (≥ ``rounds`` under
            faults/partial runs).
        valid: Whether the output solves the cell's problem (``None``
            when the cell named no problem).
        error: η₁ prediction error (``None`` without problem or
            predictions).
        message_count: Messages delivered.
        dropped_messages: Messages removed by the cell's adversary.
        delayed_messages: Messages the async delay adversary held in
            flight (``schedule="async"`` cells; 0 otherwise).
        retried_messages: Send-timeout retransmissions the async
            scheduler fired (``schedule="async"`` cells; 0 otherwise).
        kernel: Name of the compiled whole-frontier kernel that executed
            the cell (``schedule="vectorized"`` cells; ``None``
            otherwise, including after a ``fallback="interpret"``
            downgrade).
        epoch: Position of the cell in a dynamic epoch stream
            (``repro.dynamic`` rows; ``None`` for static cells).
        recourse: Number of surviving nodes whose output changed from
            the previous epoch (dynamic rows from epoch 1 on; ``None``
            otherwise).
        scratch_rounds: Rounds a solve-from-scratch run (default
            predictions, same instance/seed) took, recorded alongside
            the warm-start ``rounds`` (dynamic rows executed with the
            scratch comparison enabled; ``None`` otherwise).
        stuck: Whether the run hit its round budget in graceful mode.
        solution_size: Nodes outputting 1 (MIS-style problems), else the
            number of decided nodes.
        shards: Number of component shards merged into this row
            (``shard="components"`` cells; ``None`` for unsharded).
        shared_bytes: Bytes of this cell's graph resident in the sweep's
            :class:`~repro.shard.store.SharedCSRStore` segment (``None``
            when no store was active or the graph wasn't published).
        ship_bytes: Pickled size of the dispatched cell — the bytes that
            actually crossed the pool boundary, measured when a store is
            active (``None`` otherwise).  With zero-copy sharing this is
            the ~100-byte handle plus specs instead of the flat CSR
            buffers.
        boundary_msgs: Cut-crossing messages exchanged through the
            edge-cut barrier over the whole run (``shard="edgecut"``
            cells; ``None`` otherwise).
        boundary_bytes: Serialized size of those boundary batches —
            the actual inter-shard traffic an edge-cut run pays
            (``shard="edgecut"`` cells; ``None`` otherwise).
        metrics: Output of the cell's custom metrics callable, if any.
        elapsed: Wall-clock seconds this cell took to execute (artifact
            builds included).  Excluded from :meth:`as_tuple`: timings
            are observability, not semantics.
        profile: ``RoundProfile.summary()`` of the cell's run when the
            sweep was executed with profiling, else ``None``.
        events: The cell's event dicts (``MemoryEventSink`` form) when
            the sweep was executed with event capture, else ``None``.
        failure: ``None`` for a cell that executed; otherwise a one-line
            ``"ExcType: message"`` describing why the cell could not run
            (e.g. its worker process died and the retry died too).  A
            failed row is a placeholder — every run-derived field is
            zero/``None`` — kept so the sweep table stays complete
            instead of silently losing cells.
    """

    index: int
    label: str
    graph_name: str
    n: int
    seed: int
    rounds: int
    rounds_executed: int
    valid: Optional[bool] = None
    error: Optional[int] = None
    message_count: int = 0
    dropped_messages: int = 0
    delayed_messages: int = 0
    retried_messages: int = 0
    kernel: Optional[str] = None
    epoch: Optional[int] = None
    recourse: Optional[int] = None
    scratch_rounds: Optional[int] = None
    stuck: bool = False
    solution_size: int = 0
    shards: Optional[int] = None
    shared_bytes: Optional[int] = None
    ship_bytes: Optional[int] = None
    boundary_msgs: Optional[int] = None
    boundary_bytes: Optional[int] = None
    metrics: Dict[str, Any] = field(default_factory=dict)
    elapsed: float = 0.0
    profile: Optional[Dict[str, Any]] = None
    events: Optional[List[Dict[str, Any]]] = None
    failure: Optional[str] = None

    def as_tuple(self) -> Tuple[Any, ...]:
        """Canonical comparison form (used by backend-equivalence tests).

        ``index`` plus every *semantic* registry column plus the custom
        metrics — outcomes, nothing timing- or transport-derived (shard
        counts and ship/shared bytes vary across equivalent backends).
        """
        return (
            self.index,
            *(
                column.value_of(self)
                for column in CELL_COLUMNS
                if column.semantic
            ),
            tuple(sorted(self.metrics.items())),
        )


@dataclass
class SweepResult:
    """All rows of an executed sweep, in cell order.

    Attributes:
        name: The sweep's name.
        rows: One :class:`CellResult` per cell.
        backend: The backend that *actually* executed the cells
            (``"serial"`` or ``"process"``).  May differ from
            :attr:`requested_backend`: single-cell sweeps and platforms
            that cannot spawn worker processes run serially even when
            the process backend was requested.
        requested_backend: The backend the caller asked for.
        elapsed: Wall-clock seconds for the whole execution.
        cache_stats: Aggregated artifact-cache counters (summed over
            worker processes for the process backend).
        shared_bytes: Total bytes the sweep's
            :class:`~repro.shard.store.SharedCSRStore` held across all
            published segments (0 when no store was active) — the one
            resident graph copy all workers attached.
    """

    name: str = ""
    rows: List[CellResult] = field(default_factory=list)
    backend: str = "serial"
    requested_backend: str = ""
    elapsed: float = 0.0
    cache_stats: Dict[str, int] = field(default_factory=dict)
    shared_bytes: int = 0

    def __post_init__(self) -> None:
        if not self.requested_backend:
            self.requested_backend = self.backend

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> CellResult:
        return self.rows[index]

    # ------------------------------------------------------------------
    @property
    def all_valid(self) -> bool:
        """Whether every row with a verdict solved its problem."""
        return all(row.valid for row in self.rows if row.valid is not None)

    def row(self, label: str) -> CellResult:
        """The (first) row with the given label."""
        for row in self.rows:
            if row.label == label:
                return row
        raise KeyError(label)

    def by_label(self) -> Dict[str, CellResult]:
        """Label -> row mapping (labels should be unique per sweep)."""
        return {row.label: row for row in self.rows}

    def rounds_by_error(self) -> List[Tuple[int, int]]:
        """Sorted ``(error, max rounds at that error)`` series — the
        degradation curve a learning-augmented plot shows."""
        by_error: Dict[int, int] = {}
        for row in self.rows:
            if row.error is None:
                continue
            by_error[row.error] = max(by_error.get(row.error, 0), row.rounds)
        return sorted(by_error.items())

    def telemetry(self) -> Dict[str, Any]:
        """Flat, JSON-safe aggregate of the sweep's execution.

        Per-cell rounds/messages totals, backend provenance (requested
        vs. effective), cache hit rate and round throughput — the
        payload :func:`repro.obs.bench.write_baseline` serializes into
        ``BENCH_<name>.json`` artifacts.
        """
        rows = self.rows
        lookups = sum(
            self.cache_stats.get(key, 0) for key in ("hits", "disk_hits", "misses")
        )
        built = self.cache_stats.get("misses", 0)
        node_rounds = sum(row.rounds_executed * row.n for row in rows)
        valid_known = [row for row in rows if row.valid is not None]
        return {
            "sweep": self.name,
            "cells": len(rows),
            "backend": self.backend,
            "requested_backend": self.requested_backend,
            "elapsed": self.elapsed,
            "rounds_total": sum(row.rounds for row in rows),
            "rounds_max": max((row.rounds for row in rows), default=0),
            "rounds_executed_total": sum(row.rounds_executed for row in rows),
            "messages_total": sum(row.message_count for row in rows),
            "dropped_total": sum(row.dropped_messages for row in rows),
            "delayed_total": sum(row.delayed_messages for row in rows),
            "retried_total": sum(row.retried_messages for row in rows),
            "stuck_cells": sum(1 for row in rows if row.stuck),
            "vectorized_cells": sum(1 for row in rows if row.kernel is not None),
            "epochs": sum(
                1 for row in rows if getattr(row, "epoch", None) is not None
            ),
            "recourse_total": sum(
                getattr(row, "recourse", None) or 0 for row in rows
            ),
            "scratch_rounds_total": sum(
                getattr(row, "scratch_rounds", None) or 0 for row in rows
            ),
            "sharded_cells": sum(
                1 for row in rows if getattr(row, "shards", None) is not None
            ),
            "shards_total": sum(
                getattr(row, "shards", None) or 0 for row in rows
            ),
            "ship_bytes_total": sum(
                getattr(row, "ship_bytes", None) or 0 for row in rows
            ),
            "boundary_msgs_total": sum(
                getattr(row, "boundary_msgs", None) or 0 for row in rows
            ),
            "boundary_bytes_total": sum(
                getattr(row, "boundary_bytes", None) or 0 for row in rows
            ),
            "shared_bytes": getattr(self, "shared_bytes", 0),
            "cache_corrupt": self.cache_stats.get("corrupt", 0),
            "failed_cells": sum(1 for row in rows if row.failure is not None),
            "valid_cells": sum(1 for row in valid_known if row.valid),
            "invalid_cells": sum(1 for row in valid_known if not row.valid),
            "cache_hit_rate": (lookups - built) / lookups if lookups else 0.0,
            "node_rounds_total": node_rounds,
            "node_rounds_per_sec": node_rounds / self.elapsed if self.elapsed else 0.0,
            "cell_elapsed_total": sum(row.elapsed for row in rows),
        }

    def equivalent_to(self, other: "SweepResult") -> bool:
        """Row-for-row equality (ignores backend, timing, cache stats)."""
        return [row.as_tuple() for row in self.rows] == [
            row.as_tuple() for row in other.rows
        ]

    # ------------------------------------------------------------------
    def to_csv(self, path: str) -> None:
        """Write the rows as CSV, one :data:`CELL_COLUMNS` column each
        (custom metrics flattened into extra columns)."""
        import csv

        metric_keys = sorted({key for row in self.rows for key in row.metrics})
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(
                [*(column.name for column in CELL_COLUMNS), *metric_keys]
            )
            for row in self.rows:
                writer.writerow(
                    [
                        *(column.value_of(row) for column in CELL_COLUMNS),
                        *(row.metrics.get(key, "") for key in metric_keys),
                    ]
                )
