"""High-throughput sweep execution.

The benchmark and analysis layers all reduce to the same shape of work:
run a grid of (graph spec × prediction spec × algorithm × seed) cells
and tabulate per-cell rounds/validity/error.  This package makes that
shape first-class:

* :class:`Sweep` declares the grid out of picklable *specs* —
  :class:`GraphSpec`, :class:`PredictionSpec`, :class:`AlgorithmSpec`,
  :class:`FaultSpec` — that name top-level factories instead of holding
  built objects.
* :func:`~repro.exec.backends.execute` (via :meth:`Sweep.run`) fans the
  cells over a process pool with chunked dispatch, or runs them serially
  for debugging; both produce identical :class:`SweepResult` tables
  because per-cell seeds are derived deterministically from
  ``(base_seed, index, label)``.
* :class:`ArtifactCache` memoizes built graphs/predictions by content
  key, with an optional on-disk layer (``.repro_cache/``) that survives
  across runs.
"""

from repro.exec.backends import execute
from repro.exec.cache import ArtifactCache, content_hash
from repro.exec.plan import (
    AlgorithmSpec,
    Cell,
    FaultSpec,
    GraphSpec,
    PredictionSpec,
    Spec,
    Sweep,
    derive_cell_seed,
)
from repro.exec.results import (
    CELL_COLUMNS,
    COMPARE_COLUMNS,
    CellColumn,
    CellResult,
    SweepResult,
)

__all__ = [
    "AlgorithmSpec",
    "ArtifactCache",
    "CELL_COLUMNS",
    "COMPARE_COLUMNS",
    "Cell",
    "CellColumn",
    "CellResult",
    "FaultSpec",
    "GraphSpec",
    "PredictionSpec",
    "Spec",
    "Sweep",
    "SweepResult",
    "content_hash",
    "derive_cell_seed",
    "execute",
]
