"""Declarative sweep plans: specs, cells and the :class:`Sweep` grid.

A sweep cell must be *describable* rather than *live*: to fan cells out
over worker processes, and to cache the artifacts they share, every input
is named by a spec — a factory plus arguments — instead of a prebuilt
object.  A spec is frozen, picklable, and carries a **content key** that
encodes the factory's qualified name and every argument, so two cells
that need the same graph hit the same cache entry and any change to a
spec automatically invalidates it.

Factories are resolved in three interchangeable ways:

* a callable (must be importable from module top level, the usual pickle
  rule);
* a bare name looked up in the spec type's default namespace
  (``repro.graphs`` for graphs, ``repro.predictions`` for predictions,
  ``repro.bench.algorithms`` for algorithms, ``repro.faults`` for fault
  plans);
* a dotted path ``"package.module:attr"``.

Prebuilt objects are still accepted via ``Spec.literal(...)`` — keyed by
content hash — so interactive callers (e.g. the CLI, which parses a
graph out of a string spec) don't need a named factory.
"""

from __future__ import annotations

import hashlib
import importlib
import pickle
from dataclasses import dataclass, field
from typing import Any, Callable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.runner import ExecutionPolicy, RunConfig
from repro.graphs.csr import plain_reduce

#: Sentinel target marking a literal (prebuilt) spec.
_LITERAL = "<literal>"


def _stable_repr(value: Any) -> str:
    """Deterministic repr for key-building (dicts sorted, sets sorted)."""
    if isinstance(value, dict):
        items = ", ".join(
            f"{_stable_repr(k)}: {_stable_repr(v)}" for k, v in sorted(value.items(), key=repr)
        )
        return "{" + items + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ", ".join(sorted(_stable_repr(v) for v in value)) + "}"
    if isinstance(value, (list, tuple)):
        inner = ", ".join(_stable_repr(v) for v in value)
        return ("[%s]" if isinstance(value, list) else "(%s)") % inner
    return repr(value)


def _literal_key(value: Any) -> str:
    """Content key for a prebuilt artifact (hash of its pickle).

    Two invariants keep literal keys stable identity, not storage
    accident:

    * ``protocol=4`` is **pinned** — a content key must hash to the same
      digest on every interpreter, while the disk cache's byte stream
      (``pickle.HIGHEST_PROTOCOL`` in
      :meth:`repro.exec.cache.ArtifactCache._store_to_disk`) is free to
      vary per Python version.  The two choices may legitimately differ;
      neither is allowed to leak into the other.
    * :func:`~repro.graphs.csr.plain_reduce` suspends any active
      :class:`~repro.shard.store.SharedCSRStore` reduce hook — the key
      of a graph must hash its flat CSR buffers, never a transient
      shared-memory segment name, so the same graph keys identically
      with and without a store.
    """
    try:
        with plain_reduce():
            payload = pickle.dumps(value, protocol=4)
    except Exception:  # unpicklable literals can't be cached or shipped
        return f"unpicklable:{id(value)}"
    return hashlib.sha256(payload).hexdigest()[:32]


@dataclass(frozen=True)
class Spec:
    """A factory call, frozen: ``target(*args, **kwargs)``.

    Attributes:
        target: Callable, bare name, dotted ``"module:attr"`` path, or
            the literal sentinel (use :meth:`literal`).
        args: Positional arguments (must have stable ``repr``\\ s).
        kwargs: Keyword arguments as a sorted tuple of pairs.
        value: The prebuilt object for literal specs (excluded from
            equality; the key carries the content identity).
    """

    target: Union[str, Callable[..., Any]]
    args: Tuple[Any, ...] = ()
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    value: Any = field(default=None, compare=False, repr=False)

    #: Default namespace for bare-name targets; subclasses override.
    namespace = ""

    @classmethod
    def of(cls, target: Union[str, Callable[..., Any]], *args: Any, **kwargs: Any) -> "Spec":
        """Spec for ``target(*args, **kwargs)``."""
        return cls(target=target, args=args, kwargs=tuple(sorted(kwargs.items())))

    @classmethod
    def literal(cls, value: Any) -> "Spec":
        """Spec wrapping an already-built object."""
        return cls(target=_LITERAL, args=(_literal_key(value),), value=value)

    # ------------------------------------------------------------------
    @property
    def is_literal(self) -> bool:
        return self.target == _LITERAL

    def resolve(self) -> Callable[..., Any]:
        """The factory callable this spec names."""
        if self.is_literal:
            raise TypeError("literal specs have no factory")
        if callable(self.target):
            return self.target
        if ":" in self.target:
            module_name, attr = self.target.split(":", 1)
        else:
            module_name, attr = self.namespace, self.target
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attr)
        except AttributeError:
            raise LookupError(
                f"no factory {attr!r} in {module_name} (from spec {self.target!r})"
            ) from None

    def build(self, *prefix: Any) -> Any:
        """Build the artifact, prepending ``prefix`` positional args.

        Prediction and fault specs receive the built graph as a prefix
        argument; graph and algorithm specs are called as written.
        """
        if self.is_literal:
            return self.value
        factory = self.resolve()
        return factory(*prefix, *self.args, **dict(self.kwargs))

    @property
    def key(self) -> str:
        """Content key: qualified factory name + every argument."""
        if self.is_literal:
            return f"{type(self).__name__}:literal:{self.args[0]}"
        if callable(self.target):
            name = f"{self.target.__module__}:{self.target.__qualname__}"
        elif ":" in self.target:
            name = self.target
        else:
            name = f"{self.namespace}:{self.target}"
        args = _stable_repr(self.args)
        kwargs = _stable_repr(self.kwargs)
        return f"{type(self).__name__}:{name}:{args}:{kwargs}"


class GraphSpec(Spec):
    """Spec building a :class:`~repro.graphs.graph.DistGraph`."""

    namespace = "repro.graphs"


class PredictionSpec(Spec):
    """Spec building a prediction mapping; the factory receives the
    built graph as its first argument."""

    namespace = "repro.predictions"


class AlgorithmSpec(Spec):
    """Spec building a :class:`~repro.core.algorithm.DistributedAlgorithm`.

    Algorithms are rebuilt per cell (programs hold per-run state), so
    this spec is never cached — it exists for picklability and labels.
    """

    namespace = "repro.bench.algorithms"


class FaultSpec(Spec):
    """Spec building a :class:`~repro.faults.plan.FaultPlan`; the factory
    receives the built graph as its first argument (plans typically draw
    crash victims from the node set)."""

    namespace = "repro.faults"


def _coerce(spec_type: type, value: Any, build_hint: str) -> Spec:
    """Accept a spec, a factory callable/name, or a prebuilt object."""
    if isinstance(value, Spec):
        return value
    if callable(value) or isinstance(value, str):
        return spec_type.of(value)
    if value is None:
        raise TypeError(f"missing {build_hint}")
    return spec_type.literal(value)


@dataclass(frozen=True)
class Cell:
    """One point of a sweep grid.

    Attributes:
        label: Human-readable row label (unique within a sweep).
        graph: :class:`GraphSpec` for the instance.
        algorithm: :class:`AlgorithmSpec` for the algorithm under test.
        predictions: Optional :class:`PredictionSpec`.
        faults: Optional :class:`FaultSpec` or literal
            :class:`~repro.faults.plan.FaultPlan`.
        problem: Optional problem name (``"mis"``, ``"matching"``, ...);
            when set, the executed cell records solution validity and the
            η₁ prediction error.
        seed: The run seed; ``None`` derives a deterministic per-cell
            seed from the sweep's ``base_seed`` and the cell's position.
        config: :class:`~repro.core.runner.RunConfig` for everything else
            (model, round budget, graceful mode, fast mode).  The cell's
            ``seed``/``faults`` override the config's fields.
        metrics: Optional top-level callable
            ``(problem, graph, predictions, result) -> mapping`` whose
            output lands in the row's ``metrics`` column (e.g.
            :func:`repro.faults.harness.degradation_metrics`).
    """

    label: str
    graph: GraphSpec
    algorithm: AlgorithmSpec
    predictions: Optional[PredictionSpec] = None
    faults: Optional[Any] = None
    problem: Optional[str] = None
    seed: Optional[int] = None
    config: RunConfig = RunConfig()
    metrics: Optional[Callable[..., Mapping[str, Any]]] = None


def derive_cell_seed(base_seed: int, index: int, label: str) -> int:
    """Deterministic per-cell seed, identical on every backend.

    Derived by hashing (base seed, cell index, cell label) so that
    reordering a grid or renaming a cell changes its stream, while
    re-running the same sweep — serial or process-parallel, any chunking
    — reproduces it bit-for-bit.
    """
    digest = hashlib.sha256(f"{base_seed}:{index}:{label}".encode()).digest()
    return int.from_bytes(digest[:6], "big")


class Sweep:
    """A grid of cells plus how to execute them.

    Build one cell at a time with :meth:`add`, or as a cross product with
    :meth:`add_grid`; execute with :meth:`run` (see
    :mod:`repro.exec.backends` for the serial and process-pool backends).

    Args:
        name: Optional sweep name (shows up in result tables).
        base_seed: Seed from which cells without an explicit ``seed``
            derive theirs (see :func:`derive_cell_seed`).
    """

    def __init__(self, name: str = "", base_seed: int = 0) -> None:
        self.name = name
        self.base_seed = base_seed
        self.cells: List[Cell] = []

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)

    # ------------------------------------------------------------------
    def add(
        self,
        label: str,
        graph: Any,
        algorithm: Any,
        *,
        predictions: Any = None,
        faults: Any = None,
        problem: Optional[str] = None,
        seed: Optional[int] = None,
        config: Optional[RunConfig] = None,
        policy: Optional[ExecutionPolicy] = None,
        metrics: Optional[Callable[..., Mapping[str, Any]]] = None,
    ) -> "Sweep":
        """Append one cell; graph/algorithm/predictions accept specs,
        factories, or prebuilt objects.  Returns ``self`` for chaining.

        ``policy`` overrides the config's :class:`ExecutionPolicy` for
        this cell — a shorthand for wrapping the policy in a fresh
        :class:`RunConfig` when everything else is default.
        """
        config = config or RunConfig()
        if policy is not None:
            config = config.with_overrides(policy=policy)
        cell = Cell(
            label=label,
            graph=_coerce(GraphSpec, graph, "graph spec"),
            algorithm=_coerce(AlgorithmSpec, algorithm, "algorithm spec"),
            predictions=(
                None
                if predictions is None
                else _coerce(PredictionSpec, predictions, "prediction spec")
            ),
            faults=faults,
            problem=problem,
            seed=seed,
            config=config,
            metrics=metrics,
        )
        self.cells.append(cell)
        return self

    def add_grid(
        self,
        graphs: Mapping[str, Any],
        algorithms: Mapping[str, Any],
        *,
        predictions: Optional[Mapping[str, Any]] = None,
        seeds: Sequence[Optional[int]] = (None,),
        problem: Optional[str] = None,
        config: Optional[RunConfig] = None,
        policy: Optional[ExecutionPolicy] = None,
        metrics: Optional[Callable[..., Mapping[str, Any]]] = None,
    ) -> "Sweep":
        """Cross product: graphs × predictions × algorithms × seeds.

        Every factor maps a label fragment to a spec (or factory, or
        prebuilt object); cell labels join the fragments with ``/``.
        """
        prediction_items: List[Tuple[str, Any]] = (
            list(predictions.items()) if predictions else [("", None)]
        )
        for graph_label, graph in graphs.items():
            for pred_label, pred in prediction_items:
                for algo_label, algorithm in algorithms.items():
                    for seed in seeds:
                        fragments = [graph_label, pred_label, algo_label]
                        if len(seeds) > 1 or seed is not None:
                            fragments.append(f"s={seed}")
                        label = "/".join(part for part in fragments if part)
                        self.add(
                            label,
                            graph,
                            algorithm,
                            predictions=pred,
                            problem=problem,
                            seed=seed,
                            config=config,
                            policy=policy,
                            metrics=metrics,
                        )
        return self

    # ------------------------------------------------------------------
    def run(
        self,
        backend: str = "process",
        *,
        jobs: Optional[int] = None,
        chunk_size: Optional[int] = None,
        cache: Optional[Any] = None,
        cache_dir: Optional[str] = None,
        cache_size: int = 256,
        profile: bool = False,
        events: bool = False,
        events_path: Optional[str] = None,
    ):
        """Execute every cell and return a
        :class:`~repro.exec.results.SweepResult` (rows in cell order).

        Args:
            backend: ``"process"`` fans chunks of cells out over a
                :class:`concurrent.futures.ProcessPoolExecutor`;
                ``"serial"`` runs in-process (debugging, tiny grids,
                platforms without ``fork``).  Both produce identical
                results for the same cells.
            jobs: Worker count for the process backend (default: CPUs).
            chunk_size: Cells per dispatched chunk (default: balanced
                across ~4 waves per worker).
            cache: An :class:`~repro.exec.cache.ArtifactCache` to reuse
                across sweeps (serial backend only — the process
                backend raises rather than silently ignoring it).
            cache_dir: Directory for the on-disk artifact layer (e.g.
                ``".repro_cache"``); shared by worker processes.
            cache_size: In-memory LRU capacity per process.
            profile: Run every cell with round profiling; each row
                carries its ``RoundProfile.summary()``.
            events: Capture every cell's structured events on its row.
            events_path: Also write all captured events (tagged with
                their cell label) as one JSONL file; implies ``events``.
        """
        from repro.exec.backends import execute

        return execute(
            self,
            backend=backend,
            jobs=jobs,
            chunk_size=chunk_size,
            cache=cache,
            cache_dir=cache_dir,
            cache_size=cache_size,
            profile=profile,
            events=events,
            events_path=events_path,
        )
