"""Content-keyed artifact caching for sweep execution.

Sweeps execute grids of (graph spec × prediction spec × algorithm ×
seed) cells, and before this cache existed every cell regenerated its
graph and predictions from scratch — for the benchmark sweeps that
dominated wall-clock over the actual simulation.  An
:class:`ArtifactCache` memoizes ``spec key -> built artifact`` with an
in-memory LRU, optionally backed by pickles under a cache directory
(conventionally ``.repro_cache/``) so *repeated benchmark runs* skip
regeneration too.

Keys are content keys: a spec's key encodes the factory's qualified name
and every argument (see :mod:`repro.exec.plan`), so changing any part of
a spec changes the key and naturally invalidates the entry.  Cached
artifacts are safe to share between cells because the framework treats
them as immutable — :class:`~repro.graphs.graph.DistGraph` is frozen by
construction and the engine copies prediction mappings before touching
them.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import warnings
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.graphs.csr import plain_reduce


def content_hash(key: str) -> str:
    """Stable hex digest of a content key (used for disk filenames)."""
    return hashlib.sha256(key.encode("utf-8")).hexdigest()[:32]


#: Private sentinel for "no entry" in both cache layers.  ``None`` is a
#: legitimate artifact value (a builder may genuinely produce it), so
#: absence must be signalled out-of-band everywhere.
_ABSENT: Any = object()


class ArtifactCache:
    """In-memory LRU of built artifacts with an optional disk layer.

    Args:
        maxsize: Maximum number of in-memory entries (least recently used
            entries are evicted first).  ``0`` disables in-memory caching.
        disk_dir: When set, artifacts are also pickled under this
            directory and re-loaded on later misses — the cross-process,
            cross-run layer.  Created on first write.
    """

    def __init__(self, maxsize: int = 256, disk_dir: Optional[str] = None) -> None:
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self.disk_dir = disk_dir
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corrupt = 0

    # ------------------------------------------------------------------
    def get_or_build(self, key: str, builder: Callable[[], Any]) -> Any:
        """The artifact for ``key``, building (and storing) it on a miss.

        A builder returning ``None`` is cached like any other artifact —
        "absent" is tracked by a private sentinel, never by the value.
        """
        value = self._entries.get(key, _ABSENT)
        if value is not _ABSENT:
            self.hits += 1
            self._entries.move_to_end(key)
            return value
        value = self._load_from_disk(key)
        if value is not _ABSENT:
            self.disk_hits += 1
        else:
            self.misses += 1
            value = builder()
            self._store_to_disk(key, value)
        self._remember(key, value)
        return value

    def stats(self) -> Dict[str, int]:
        """Counters: memory hits, disk hits, builds, corrupt disk
        entries evicted, and current size."""
        return {
            "hits": self.hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "size": len(self._entries),
        }

    def clear(self) -> None:
        """Drop every in-memory entry (the disk layer is untouched)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    # ------------------------------------------------------------------
    def _remember(self, key: str, value: Any) -> None:
        if self.maxsize == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def _disk_path(self, key: str) -> Optional[str]:
        if self.disk_dir is None:
            return None
        return os.path.join(self.disk_dir, f"{content_hash(key)}.pkl")

    def _load_from_disk(self, key: str) -> Any:
        """The stored artifact, or ``_ABSENT`` on a miss (an artifact may
        legitimately *be* ``None``, so misses are signalled out-of-band)."""
        path = self._disk_path(key)
        if path is None or not os.path.exists(path):
            return _ABSENT
        try:
            with open(path, "rb") as handle:
                stored_key, value = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError) as exc:
            # A corrupt entry (truncated write, stale class layout, a
            # partially-copied cache directory) rebuilds — but loudly:
            # silent swallowing hid real corruption for an entire sweep.
            # The broken file is evicted so the warning fires once, not
            # on every lookup.
            self.corrupt += 1
            try:
                os.unlink(path)
            except OSError:
                pass
            warnings.warn(
                f"evicting corrupt artifact-cache entry {path} "
                f"({type(exc).__name__}: {exc}); the artifact will be "
                "rebuilt",
                UserWarning,
                stacklevel=4,
            )
            return _ABSENT
        # The full key is stored alongside the artifact so a (vanishingly
        # unlikely) digest collision rebuilds instead of aliasing.
        if stored_key != key:
            return _ABSENT
        return value

    def _store_to_disk(self, key: str, value: Any) -> None:
        path = self._disk_path(key)
        if path is None:
            return
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            tmp = f"{path}.tmp.{os.getpid()}"
            # HIGHEST_PROTOCOL is a *storage* choice, free to vary per
            # interpreter: entries are looked up by content key, never
            # re-hashed, so the on-disk byte stream does not participate
            # in identity.  Content keys, by contrast, pin protocol=4
            # (see repro.exec.plan._literal_key) — the two sites may
            # legitimately disagree, and neither may influence the
            # other.  ``plain_reduce`` keeps the pickle self-contained:
            # a CSR topology must land here as flat buffers even while a
            # SharedCSRStore is active, because the cache entry outlives
            # the store's segments.
            with plain_reduce(), open(tmp, "wb") as handle:
                pickle.dump((key, value), handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: concurrent workers never clash
        except (OSError, pickle.PicklingError):
            pass  # caching is best-effort; the build already succeeded


#: Per-process cache used by sweep workers.  Worker processes configure it
#: once per pool (see :func:`repro.exec.backends._init_worker`); the serial
#: backend uses a cache owned by the Sweep call instead.
_process_cache: Optional[ArtifactCache] = None


def process_cache() -> ArtifactCache:
    """This process's worker cache (created on first use)."""
    global _process_cache
    if _process_cache is None:
        _process_cache = ArtifactCache()
    return _process_cache


def configure_process_cache(
    maxsize: int = 256, disk_dir: Optional[str] = None
) -> ArtifactCache:
    """(Re)configure this process's worker cache."""
    global _process_cache
    _process_cache = ArtifactCache(maxsize=maxsize, disk_dir=disk_dir)
    return _process_cache
