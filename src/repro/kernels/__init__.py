"""Whole-frontier vectorized kernels for ``schedule="vectorized"``.

The interpreted engine runs one Python ``compose``/``process`` call per
node per round.  For the paper's greedy families that is pure overhead:
each round is a data-parallel function of the active mask and the CSR
adjacency, so it can run as a handful of NumPy array operations over the
whole frontier at once — active-mask bitsets, ``reduceat`` neighbor
aggregation over the ``indptr``/``indices`` buffers, and batched
message/bit accounting that reproduces the interpreted engine's CONGEST
counters bit-for-bit.

One kernel per algorithm family lives in its own module:

* :mod:`repro.kernels.mis` — Greedy MIS (Algorithm 1).
* :mod:`repro.kernels.matching` — proposal-based Maximal Matching.
* :mod:`repro.kernels.coloring` — palette greedy (Δ+1)-coloring.

The registry is keyed by the template (algorithm) name; resolution
matches the *program class* a run would execute, so a kernel only ever
replaces the exact per-node program it was verified bit-identical
against (tests/test_vectorized.py fuzzes that equivalence).  Anything
else — unregistered programs, fault plans, event sinks, per-node program
mappings — fails the capability handshake with
:class:`UnsupportedScheduleError`, or falls back to the interpreted
quiescent schedule when the run asks for ``fallback="interpret"``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

__all__ = [
    "KERNELS",
    "UnsupportedScheduleError",
    "available_kernels",
    "kernel_for_program",
    "numpy_available",
    "resolve_kernel",
]


class UnsupportedScheduleError(RuntimeError):
    """``schedule="vectorized"`` cannot execute this run.

    Raised by the kernel-capability handshake when no compiled kernel
    matches the run's program family, when numpy is unavailable, or when
    the run uses features only the interpreted engine implements (fault
    injection, event sinks, traces, per-node program mappings).  Pass
    ``fallback="interpret"`` to downgrade the error to a warning and run
    the interpreted quiescent schedule instead.
    """


def numpy_available() -> bool:
    """Whether the numpy runtime the kernels compile against is present."""
    try:
        import numpy  # noqa: F401
    except ImportError:  # pragma: no cover - numpy is a declared dep
        return False
    return True


_REGISTRY: Optional[Dict[str, type]] = None


def _registry() -> Dict[str, type]:
    """Template name -> kernel class, loaded lazily (numpy-gated)."""
    global _REGISTRY
    if _REGISTRY is None:
        from repro.kernels.coloring import GreedyColoringKernel
        from repro.kernels.matching import GreedyMatchingKernel
        from repro.kernels.mis import GreedyMISKernel

        _REGISTRY = {
            kernel.name: kernel
            for kernel in (
                GreedyMISKernel,
                GreedyMatchingKernel,
                GreedyColoringKernel,
            )
        }
    return _REGISTRY


def KERNELS() -> Dict[str, type]:
    """The kernel registry (template name -> kernel class)."""
    return dict(_registry())


def available_kernels() -> Tuple[str, ...]:
    """Names of the registered kernels, ``()`` when numpy is missing."""
    if not numpy_available():  # pragma: no cover - numpy is a declared dep
        return ()
    return tuple(sorted(_registry()))


def kernel_for_program(program: Any) -> Optional[type]:
    """The kernel class compiled for ``type(program)``, or ``None``.

    Matches the exact class (not subclasses): a subclass may override
    ``compose``/``process`` and silently diverge from the verified
    array semantics.
    """
    for kernel in _registry().values():
        if kernel.program_class is type(program):
            return kernel
    return None


def resolve_kernel(rt: Any, programs: Any) -> Any:
    """Capability handshake: return a bound-ready kernel or raise.

    ``rt`` is the engine mid-construction (graph/model/faults/obs wired,
    per-node state not yet built); ``programs`` is the run's program
    source.  Raises :class:`UnsupportedScheduleError` with an actionable
    reason when the run cannot be vectorized.
    """
    if not numpy_available():  # pragma: no cover - numpy is a declared dep
        raise UnsupportedScheduleError(
            "schedule='vectorized' requires numpy, which is not importable"
        )
    if rt.interposer is not None:
        raise UnsupportedScheduleError(
            "fault injection (faults=/crash_rounds=) is interpreted-only; "
            "vectorized kernels have no per-message fault surface"
        )
    if getattr(rt.graph, "is_edgecut", False):
        raise UnsupportedScheduleError(
            "edge-cut shards are interpreted-only: compiled kernels index "
            "dense whole-graph arrays and have no boundary exchange; use "
            "schedule='eager'/'quiescent' or fallback='interpret'"
        )
    if rt.obs:
        raise UnsupportedScheduleError(
            "event sinks and traces observe per-node phases the vectorized "
            "kernels do not execute; drop sinks=/trace= or use an "
            "interpreted schedule"
        )
    if not callable(programs):
        raise UnsupportedScheduleError(
            "per-node program mappings may mix program types; "
            "schedule='vectorized' needs a program factory (an algorithm)"
        )
    nodes = rt.graph.nodes
    if not nodes:
        from repro.kernels.base import EmptyGraphKernel

        return EmptyGraphKernel()
    probe = programs(min(nodes))
    kernel_class = kernel_for_program(probe)
    if kernel_class is None:
        names = ", ".join(sorted(_registry()))
        raise UnsupportedScheduleError(
            f"no vectorized kernel is registered for program "
            f"{type(probe).__name__}; compiled kernels exist for: {names}"
        )
    return kernel_class()
