"""Whole-frontier kernel for the Greedy MIS Algorithm (Algorithm 1).

Array form of :class:`~repro.algorithms.mis.greedy.GreedyMISProgram`:
in each odd round every active local-identifier-maximum joins the
independent set, notifies its active neighbors (one JOIN per active
neighbor, 16 bits each under the interpreted estimator), outputs 1 and
terminates; in the following even round every notified node outputs 0
and terminates.  Winners are never adjacent, so the per-round update is
a pure function of the active mask — one ``segment_any`` for the local
maxima, one scatter for the dominated set.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.algorithms.mis.greedy import GreedyMISProgram
from repro.kernels.base import FrontierKernel
from repro.simulator.message import estimate_bits


class GreedyMISKernel(FrontierKernel):
    """Vectorized Algorithm 1 (template name ``greedy-mis``)."""

    name = "greedy-mis"
    program_class = GreedyMISProgram

    def bind(self, rt: Any) -> None:
        super().bind(rt)
        self.join_bits = estimate_bits(GreedyMISProgram.JOIN)
        self.dominated = np.zeros(self.n, dtype=bool)
        self.in_set = np.zeros(self.n, dtype=bool)

    def run_round(self, round_index: int) -> int:
        active = self.active
        if round_index % 2 == 1:
            nb_act = self.active_neighbor_flags()
            winners = self.local_maxima(nb_act)
            widx = np.flatnonzero(winners)
            if widx.size == 0:
                return 0
            act_deg = self.segment_count(nb_act)
            self.account_uniform(int(act_deg[widx].sum()), self.join_bits)
            # Every active node adjacent to a winner received a JOIN this
            # round; winners themselves cannot (winners are independent).
            hit = active & self.segment_any(winners[self.nbr])
            np.logical_or(self.dominated, hit, out=self.dominated)
            self.in_set[widx] = True
            self.retire(widx, round_index)
            return int(widx.size + hit.sum())
        out = np.flatnonzero(active & self.dominated)
        self.retire(out, round_index)
        return int(out.size)

    def output_value(self, index: int) -> Any:
        return 1 if self.in_set[index] else 0

    def state_snapshot(self, index: int) -> Dict[str, str]:
        return {"_dominated": repr(bool(self.dominated[index]))}
