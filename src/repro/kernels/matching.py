"""Whole-frontier kernel for the proposal-based Maximal Matching.

Array form of
:class:`~repro.algorithms.matching.greedy.GreedyMatchingProgram`.
Rounds come in groups of three:

* **step 0** — every active local maximum with an active neighbor
  proposes to its smallest active neighbor (``minimum.reduceat``); each
  proposee keeps its largest proposer (``np.maximum.at``).
* **step 1** — proposees ACCEPT their kept proposer; a proposer binds
  exactly when its own proposee kept it (an ACCEPT can only come from
  the node it proposed to, so ``partner[proposed_to[a]] == a`` is the
  whole acceptance condition), guarded by the proposal's round stamp
  like the interpreted program.
* **step 2** — matched nodes inform their active neighbors except the
  partner, output the match and terminate; an unmatched node whose
  active neighbors all matched this group (vacuously: none) outputs
  ``UNMATCHED`` and terminates.

Message widths reproduce the interpreted estimator exactly: PROPOSE and
MATCHED are 56-bit string payloads, ACCEPT is 48 bits.
"""

from __future__ import annotations

from typing import Any, Dict

import numpy as np

from repro.algorithms.matching.greedy import GreedyMatchingProgram
from repro.kernels.base import FrontierKernel
from repro.problems.matching import UNMATCHED
from repro.simulator.message import estimate_bits


class GreedyMatchingKernel(FrontierKernel):
    """Vectorized 3-round matching groups (``greedy-matching``)."""

    name = "greedy-matching"
    program_class = GreedyMatchingProgram

    def bind(self, rt: Any) -> None:
        super().bind(rt)
        self.propose_bits = estimate_bits(GreedyMatchingProgram.PROPOSE)
        self.accept_bits = estimate_bits(GreedyMatchingProgram.ACCEPT)
        self.matched_bits = estimate_bits(GreedyMatchingProgram.MATCHED)
        #: Matched partner (internal index), -1 while unmatched.
        self.partner = np.full(self.n, -1, dtype=np.int64)
        self.proposed_to = np.full(self.n, -1, dtype=np.int64)
        self.proposed_round = np.full(self.n, -1, dtype=np.int64)

    def setup(self) -> None:
        # Nodes with no neighbors at all output UNMATCHED in round 0.
        self.retire(np.flatnonzero(self.deg == 0), 0)

    def run_round(self, round_index: int) -> int:
        step = (round_index - 1) % 3
        if step == 0:
            return self._propose(round_index)
        if step == 1:
            return self._accept(round_index)
        return self._inform(round_index)

    def _propose(self, round_index: int) -> int:
        nb_act = self.active_neighbor_flags()
        act_deg = self.segment_count(nb_act)
        proposers = self.local_maxima(nb_act) & (act_deg > 0)
        pidx = np.flatnonzero(proposers)
        if pidx.size == 0:
            return 0
        nb_or_sentinel = np.where(nb_act, self.nbr, self.n)
        min_active_nb = self.segment_min(nb_or_sentinel, self.n)
        targets = min_active_nb[pidx]
        self.proposed_to[pidx] = targets
        self.proposed_round[pidx] = round_index
        self.account_uniform(int(pidx.size), self.propose_bits)
        # Each proposee keeps its largest proposer.  Proposees are never
        # proposers (they have a larger active neighbor), and every
        # active node enters step 0 with partner == -1, so the scatter
        # cannot clobber a live pairing.
        np.maximum.at(self.partner, targets, pidx)
        return int(pidx.size + np.unique(targets).size)

    def _accept(self, round_index: int) -> int:
        # Exactly the proposees hold a partner at the top of step 1.
        senders = np.flatnonzero(self.active & (self.partner >= 0))
        if senders.size == 0:
            return 0
        self.account_uniform(int(senders.size), self.accept_bits)
        stamped = np.flatnonzero(
            self.active & (self.proposed_round == round_index - 1)
        )
        kept = self.partner[self.proposed_to[stamped]] == stamped
        winners = stamped[kept]
        self.partner[winners] = self.proposed_to[winners]
        return int(senders.size + winners.size)

    def _inform(self, round_index: int) -> int:
        active = self.active
        matched = active & (self.partner >= 0)
        midx = np.flatnonzero(matched)
        nb_act = self.active_neighbor_flags()
        if midx.size:
            act_deg = self.segment_count(nb_act)
            # MATCHED goes to every active neighbor except the partner,
            # who is itself matched and active this round.
            self.account_uniform(
                int(act_deg[midx].sum()) - int(midx.size), self.matched_bits
            )
        # An unmatched node terminates when every active neighbor matched
        # this group (vacuously true once its neighborhood emptied).
        has_unmatched_nb = self.segment_any(nb_act & ~matched[self.nbr])
        finishers = np.flatnonzero(
            active & (self.partner < 0) & ~has_unmatched_nb
        )
        self.retire(midx, round_index)
        self.retire(finishers, round_index)
        return int(midx.size + finishers.size)

    def output_value(self, index: int) -> Any:
        partner = self.partner[index]
        if partner < 0:
            return UNMATCHED
        return int(self.ids[partner])

    def state_snapshot(self, index: int) -> Dict[str, str]:
        def id_or_none(value: int) -> str:
            return repr(int(self.ids[value])) if value >= 0 else repr(None)

        stamp = self.proposed_round[index]
        return {
            "_proposed_to": id_or_none(self.proposed_to[index]),
            "_proposed_round": repr(int(stamp)) if stamp >= 0 else repr(None),
            "_partner": id_or_none(self.partner[index]),
        }
