"""Shared machinery for whole-frontier kernels.

A :class:`FrontierKernel` executes one algorithm family's rounds as
array programs over the run's :class:`~repro.graphs.csr.CSRTopology`
buffers.  The engine's loop, round numbering, stop conditions and result
surface are untouched — the kernel only replaces the per-node
compose/deliver/process/finalize interpretation with whole-frontier
NumPy operations, and keeps the Python-side ``_active`` set in step so
the engine's ``while self._active`` condition still drives the run.

Counter parity is a hard contract, fuzz-checked against the interpreted
engine: ``message_count``, ``total_bits``, ``max_message_bits``,
``bandwidth_violations`` (and strict-CONGEST raising) must come out
bit-identical, so the accounting helpers here mirror
:meth:`repro.simulator.transport.Transport.account` in batch form.

Per-node results are buffered in flat arrays during the run and written
back into ``result.records``/``result.outputs`` once, in :meth:`flush`
(called from the scheduler's ``finish`` hook) — at n≈10⁶ the round loop
never touches a Python object per node.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.graphs.csr import ensure_topology
from repro.simulator.metrics import NodeSnapshot, StuckReport
from repro.simulator.transport import BandwidthExceeded


class FrontierKernel:
    """Base class: CSR views, segment reductions, batched accounting.

    Subclasses set :attr:`name` (the template name the registry is keyed
    by) and :attr:`program_class` (the exact per-node program class the
    kernel replaces), and implement :meth:`run_round`,
    :meth:`output_value` and :meth:`state_snapshot`.
    """

    name: str = ""
    program_class: Optional[type] = None

    # ------------------------------------------------------------------
    # Binding
    # ------------------------------------------------------------------
    def bind(self, rt: Any) -> None:
        """Attach the engine and materialize the CSR array views."""
        self.rt = rt
        self.result = rt.result
        self.model = rt.model
        self.fast = rt.fast
        csr = ensure_topology(rt.graph)
        self.csr = csr
        self.n = csr.n
        #: External node ids by internal index (ascending, so id order
        #: and index order agree — ``is_local_maximum`` comparisons can
        #: use indices directly).
        self.ids = np.asarray(csr.ids, dtype=np.int64)
        self.indptr = np.frombuffer(csr.indptr, dtype=np.int64)
        #: Neighbor *internal indices*, row-sorted ascending.
        self.nbr = np.frombuffer(csr.indices, dtype=np.int64)
        self.deg = self.indptr[1:] - self.indptr[:-1]
        #: Source node (internal index) of every CSR entry.
        self.edge_src = np.repeat(np.arange(self.n, dtype=np.int64), self.deg)
        #: Edge mask: the neighbor has the larger identifier.
        self.higher = self.nbr > self.edge_src
        nonempty = self.deg > 0
        self._nonempty = nonempty
        self._row_starts = self.indptr[:-1][nonempty]
        #: CONGEST budget in bits, or ``None`` under LOCAL.
        self.bits_budget = self.model.bandwidth_bits(self.n)
        self.active = np.ones(self.n, dtype=bool)
        #: Termination round per node, -1 while still running.
        self.term_round = np.full(self.n, -1, dtype=np.int64)
        self._flushed = False

    # ------------------------------------------------------------------
    # Segment reductions over CSR rows
    # ------------------------------------------------------------------
    def segment_any(self, edge_flags: np.ndarray) -> np.ndarray:
        """Per-node OR of a boolean edge array (False for empty rows)."""
        out = np.zeros(self.n, dtype=bool)
        if edge_flags.size:
            out[self._nonempty] = np.logical_or.reduceat(
                edge_flags, self._row_starts
            )
        return out

    def segment_count(self, edge_flags: np.ndarray) -> np.ndarray:
        """Per-node count of set flags in a boolean edge array."""
        out = np.zeros(self.n, dtype=np.int64)
        if edge_flags.size:
            out[self._nonempty] = np.add.reduceat(
                edge_flags.astype(np.int64), self._row_starts
            )
        return out

    def segment_min(
        self, edge_values: np.ndarray, default: int
    ) -> np.ndarray:
        """Per-node minimum of an integer edge array (``default`` when
        the row is empty or every entry was masked to ``default``)."""
        out = np.full(self.n, default, dtype=np.int64)
        if edge_values.size:
            out[self._nonempty] = np.minimum.reduceat(
                edge_values, self._row_starts
            )
        return out

    def active_neighbor_flags(self) -> np.ndarray:
        """Edge mask: the neighbor endpoint is still active."""
        return self.active[self.nbr]

    def local_maxima(self, nb_act: np.ndarray) -> np.ndarray:
        """Active nodes with no active higher-id neighbor.

        Vacuously true for isolated/orphaned active nodes — matching
        :meth:`NodeContext.is_local_maximum`.
        """
        return self.active & ~self.segment_any(nb_act & self.higher)

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def retire(self, idx: np.ndarray, round_index: int) -> None:
        """Mark ``idx`` (internal indices) terminated this round.

        Updates both the kernel's active mask and the engine's
        ``_active`` set — the latter is what the engine's run loop and
        round-limit diagnostics read.
        """
        if idx.size == 0:
            return
        self.term_round[idx] = round_index
        self.active[idx] = False
        self.rt._active.difference_update(self.ids[idx].tolist())

    # ------------------------------------------------------------------
    # Batched message accounting (Transport.account, vectorized)
    # ------------------------------------------------------------------
    def account_uniform(self, count: int, bits: int) -> None:
        """Charge ``count`` messages of identical ``bits`` width."""
        count = int(count)
        if count == 0:
            return
        result = self.result
        result.message_count += count
        if self.fast:
            return
        result.total_bits += count * bits
        if bits > result.max_message_bits:
            result.max_message_bits = bits
        if self.bits_budget is not None and bits > self.bits_budget:
            result.bandwidth_violations += count
            if self.model.strict:
                raise BandwidthExceeded(
                    f"{bits}-bit message exceeds "
                    f"{self.bits_budget}-bit budget"
                )

    def account_varying(
        self, counts: np.ndarray, bits: np.ndarray
    ) -> None:
        """Charge ``counts[i]`` messages of ``bits[i]`` width each."""
        total = int(counts.sum())
        if total == 0:
            return
        result = self.result
        result.message_count += total
        if self.fast:
            return
        result.total_bits += int((counts * bits).sum())
        sent = counts > 0
        if sent.any():
            widest = int(bits[sent].max())
            if widest > result.max_message_bits:
                result.max_message_bits = widest
            if self.bits_budget is not None and widest > self.bits_budget:
                over = sent & (bits > self.bits_budget)
                result.bandwidth_violations += int(counts[over].sum())
                if self.model.strict:
                    raise BandwidthExceeded(
                        f"{widest}-bit message exceeds "
                        f"{self.bits_budget}-bit budget"
                    )

    # ------------------------------------------------------------------
    # Family hooks
    # ------------------------------------------------------------------
    def setup(self) -> None:
        """Round 0: the programs' ``setup`` phase (default: no-op)."""

    def run_round(self, round_index: int) -> int:
        """Execute one whole-frontier round; return nodes that acted."""
        raise NotImplementedError

    def output_value(self, index: int) -> Any:
        """The final output of a terminated node (internal ``index``)."""
        raise NotImplementedError

    def state_snapshot(self, index: int) -> Dict[str, str]:
        """Repr-ized program state of a live node, for stuck reports."""
        return {}

    # ------------------------------------------------------------------
    # Result write-back
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Write buffered terminations into the engine's result record.

        Idempotent; called from the scheduler's ``finish`` hook after
        the round loop, and again defensively from stuck-report paths.
        """
        if self._flushed:
            return
        self._flushed = True
        result = self.result
        result.kernel = self.name
        records = result.records
        outputs = result.outputs
        done = np.flatnonzero(self.term_round >= 0)
        node_ids = self.ids[done].tolist()
        rounds = self.term_round[done].tolist()
        for index, node, round_index in zip(
            done.tolist(), node_ids, rounds
        ):
            value = self.output_value(index)
            record = records[node]
            record.output = value
            record.termination_round = round_index
            outputs[node] = value

    def stuck_report(self, round_index: int, reason: str) -> StuckReport:
        """Diagnose a cut-short run from the kernel's arrays."""
        self.flush()
        live: List[int] = sorted(self.rt._active)
        index_of = self.csr.index_of
        snapshots = {
            node: NodeSnapshot(
                node_id=node,
                round=round_index,
                last_inbox={},
                state=self.state_snapshot(index_of[node]),
                has_output=False,
            )
            for node in live
        }
        return StuckReport(
            round=round_index,
            live_nodes=live,
            total_nodes=self.n,
            snapshots=snapshots,
            reason=reason,
        )


class EmptyGraphKernel(FrontierKernel):
    """Degenerate kernel for zero-node graphs (nothing to schedule)."""

    name = "empty"
    program_class = None

    def run_round(self, round_index: int) -> int:  # pragma: no cover
        return 0

    def output_value(self, index: int) -> Any:  # pragma: no cover
        return None
