"""Whole-frontier kernel for the palette greedy (Δ+1)-coloring.

Array form of :class:`~repro.algorithms.coloring.greedy.
PaletteGreedyColoringProgram`: each round every active local maximum
picks the smallest positive color not output by any neighbor, informs
its active neighbors, outputs the color and terminates.  Same-round
winners are independent, so each winner's palette depends only on
colors fixed in *earlier* rounds — the mex is a dense boolean matrix
(winners × palette width) built in one scatter, chunked to bound peak
memory on high-degree frontiers.

Message widths match the interpreted estimator: an integer color ``c``
costs ``c.bit_length()`` bits (computed for the whole frontier via the
``frexp`` exponent, exact for every color the palette can produce).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.algorithms.coloring.greedy import PaletteGreedyColoringProgram
from repro.kernels.base import FrontierKernel

#: Upper bound on the scatter matrix (winners × palette width) cells per
#: chunk — 2**24 bool cells is 16 MiB, far below the CSR buffers at the
#: sizes where chunking matters.
_CHUNK_CELLS = 1 << 24


class GreedyColoringKernel(FrontierKernel):
    """Vectorized palette greedy coloring (``greedy-coloring``)."""

    name = "greedy-coloring"
    program_class = PaletteGreedyColoringProgram

    def bind(self, rt: Any) -> None:
        super().bind(rt)
        #: Assigned color per node; 0 while uncolored.  Doubles as the
        #: "terminated neighbor's published output" the palette reads —
        #: winners of a round are independent, so a round only ever sees
        #: colors fixed in strictly earlier rounds, exactly the
        #: ``ctx.neighbor_outputs`` timing of the interpreted engine.
        self.color = np.zeros(self.n, dtype=np.int64)

    def run_round(self, round_index: int) -> int:
        nb_act = self.active_neighbor_flags()
        winners = self.local_maxima(nb_act)
        widx = np.flatnonzero(winners)
        if widx.size == 0:
            return 0
        choice = self._mex(winners, widx)
        palette_size = (self.rt.graph.delta or 0) + 1
        over = choice > palette_size
        if over.any():
            # The interpreted engine processes nodes in ascending id
            # order, so the first offender it reports is the smallest.
            first = int(np.argmax(over))
            raise RuntimeError(
                f"node {int(self.ids[widx[first]])}: palette exhausted "
                f"(choice {int(choice[first])} > {palette_size})"
            )
        act_deg = self.segment_count(nb_act)
        bits = np.frexp(choice.astype(np.float64))[1].astype(np.int64)
        self.account_varying(act_deg[widx], bits)
        self.color[widx] = choice
        self.retire(widx, round_index)
        return int(widx.size)

    def _mex(self, winners: np.ndarray, widx: np.ndarray) -> np.ndarray:
        """Smallest positive color unused by each winner's neighbors."""
        wdeg = self.deg[widx]
        # mex ≤ deg+1, so colors ≥ width can never block it and the
        # argmax below always finds an unused column within the matrix.
        width = int(wdeg.max()) + 2 if widx.size else 2
        winner_edges = winners[self.edge_src]
        seen_colors = self.color[self.nbr[winner_edges]]
        # Compressed row index per winner edge; non-decreasing because
        # CSR edges are grouped by source row.
        rank = np.cumsum(winners) - 1
        rows = rank[self.edge_src[winner_edges]]
        choice = np.empty(widx.size, dtype=np.int64)
        rows_per_chunk = max(1, _CHUNK_CELLS // width)
        for lo in range(0, widx.size, rows_per_chunk):
            hi = min(lo + rows_per_chunk, widx.size)
            start, stop = np.searchsorted(rows, (lo, hi))
            used = np.zeros((hi - lo, width), dtype=bool)
            colors = seen_colors[start:stop]
            in_range = (colors > 0) & (colors < width)
            used[rows[start:stop][in_range] - lo, colors[in_range]] = True
            choice[lo:hi] = np.argmax(~used[:, 1:], axis=1) + 1
        return choice

    def output_value(self, index: int) -> Any:
        return int(self.color[index])
