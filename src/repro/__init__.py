"""repro — Distributed Graph Algorithms with Predictions.

A synchronous message-passing framework reproducing Boyar, Ellen and
Larsen, *Distributed Graph Algorithms with Predictions* (brief
announcement at PODC 2025): the LOCAL/CONGEST simulator, the
consistency/robustness/degradation framework, the four templates of
Section 7, all four problems (MIS, Maximal Matching, (Δ+1)-Vertex
Coloring, (2Δ−1)-Edge Coloring), their error measures, and the
experiment harness that validates every quantitative claim.

Quickstart::

    from repro import run, SimpleTemplate
    from repro.algorithms.mis import MISInitializationAlgorithm, GreedyMISAlgorithm
    from repro.graphs import erdos_renyi
    from repro.predictions import noisy_predictions
    from repro.problems import MIS

    graph = erdos_renyi(100, 0.05, seed=1)
    algorithm = SimpleTemplate(MISInitializationAlgorithm(), GreedyMISAlgorithm())
    predictions = noisy_predictions(MIS, graph, rate=0.1, seed=1)
    result = run(algorithm, graph, predictions)
    assert MIS.is_solution(graph, result.outputs)
    print(result.rounds, "rounds")
"""

from repro.core import (
    ConsecutiveTemplate,
    HedgedConsecutiveTemplate,
    DistributedAlgorithm,
    FunctionalAlgorithm,
    InterleavedTemplate,
    ParallelTemplate,
    PhasedAlgorithm,
    SimpleTemplate,
    TwoPartReference,
    run,
    run_with_trace,
)
from repro.graphs import DistGraph
from repro.simulator import CONGEST, LOCAL, RunResult, SyncEngine

__version__ = "1.0.0"

__all__ = [
    "CONGEST",
    "ConsecutiveTemplate",
    "DistGraph",
    "DistributedAlgorithm",
    "FunctionalAlgorithm",
    "HedgedConsecutiveTemplate",
    "InterleavedTemplate",
    "LOCAL",
    "ParallelTemplate",
    "PhasedAlgorithm",
    "RunResult",
    "SimpleTemplate",
    "SyncEngine",
    "TwoPartReference",
    "__version__",
    "run",
    "run_with_trace",
]
