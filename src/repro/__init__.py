"""repro — Distributed Graph Algorithms with Predictions.

A synchronous message-passing framework reproducing Boyar, Ellen and
Larsen, *Distributed Graph Algorithms with Predictions* (brief
announcement at PODC 2025): the LOCAL/CONGEST simulator, the
consistency/robustness/degradation framework, the four templates of
Section 7, all four problems (MIS, Maximal Matching, (Δ+1)-Vertex
Coloring, (2Δ−1)-Edge Coloring), their error measures, the sweep
executor, and the experiment harness that validates every quantitative
claim.

This module is the stable public surface (see docs/API.md): single runs
go through :func:`run`/:class:`RunConfig` (with scheduling described by
an :class:`ExecutionPolicy`), grids of runs through :class:`Sweep`;
:func:`schedules` lists the available schedules and their capabilities.

Quickstart::

    from repro import MIS, mis_simple, run
    from repro.graphs import erdos_renyi
    from repro.predictions import noisy_predictions

    graph = erdos_renyi(100, 0.05, seed=1)
    predictions = noisy_predictions(MIS, graph, rate=0.1, seed=1)
    result = run(mis_simple(), graph, predictions)
    assert MIS.is_solution(graph, result.outputs)
    print(result.rounds, "rounds")

A grid of runs, fanned over a process pool::

    from repro import Sweep

    sweep = Sweep(name="noise", base_seed=1)
    sweep.add_grid(
        {"gnp": graph},
        {"simple": "mis_simple", "parallel": "mis_parallel"},
        predictions={"zeros": "all_zeros_mis"},
        seeds=(0, 1, 2),
        problem="mis",
    )
    table = sweep.run()
    print(table.rounds_by_error())
"""

from repro.bench.algorithms import (
    coloring_simple,
    edge_coloring_simple,
    matching_simple,
    mis_consecutive,
    mis_hedged,
    mis_interleaved,
    mis_parallel,
    mis_simple,
)
from repro.core import (
    ConsecutiveTemplate,
    HedgedConsecutiveTemplate,
    DistributedAlgorithm,
    ExecutionPolicy,
    FunctionalAlgorithm,
    InterleavedTemplate,
    ParallelTemplate,
    PhasedAlgorithm,
    RunConfig,
    SimpleTemplate,
    TwoPartReference,
    run,
    run_with_trace,
)
from repro.exec import Sweep, SweepResult
from repro.faults import FaultPlan
from repro.graphs import DistGraph
from repro.kernels import UnsupportedScheduleError
from repro.obs import (
    EventSink,
    JsonlEventSink,
    MemoryEventSink,
    RoundProfile,
)
from repro.problems import EDGE_COLORING, MATCHING, MIS, VERTEX_COLORING, get_problem
from repro.simulator import CONGEST, LOCAL, RunResult, SyncEngine
from repro.simulator import schedule_capabilities as _schedule_capabilities

__version__ = "1.8.0"


def schedules():
    """Capability map of every ``schedule=`` name, for introspection.

    Returns ``{name: {"quiescence": bool, "async": bool, "profile": bool,
    "kernels": tuple}}`` — one entry per registered
    :class:`~repro.simulator.scheduling.Scheduler`.  ``kernels`` lists
    the compiled whole-frontier kernels a schedule can execute
    (non-empty only for ``"vectorized"``, and only when numpy is
    importable).  The CLI's ``--schedule`` choices and
    :class:`ExecutionPolicy` validation are derived from the same
    registry, so this is the authoritative list::

        >>> sorted(repro.schedules())
        ['async', 'eager', 'quiescent', 'quiescent-debug', 'vectorized']
    """
    return _schedule_capabilities()

__all__ = [
    "CONGEST",
    "ConsecutiveTemplate",
    "DistGraph",
    "DistributedAlgorithm",
    "EDGE_COLORING",
    "EventSink",
    "ExecutionPolicy",
    "FaultPlan",
    "FunctionalAlgorithm",
    "HedgedConsecutiveTemplate",
    "InterleavedTemplate",
    "JsonlEventSink",
    "LOCAL",
    "MATCHING",
    "MIS",
    "MemoryEventSink",
    "ParallelTemplate",
    "PhasedAlgorithm",
    "RoundProfile",
    "RunConfig",
    "RunResult",
    "SimpleTemplate",
    "Sweep",
    "SweepResult",
    "SyncEngine",
    "TwoPartReference",
    "UnsupportedScheduleError",
    "VERTEX_COLORING",
    "__version__",
    "coloring_simple",
    "edge_coloring_simple",
    "get_problem",
    "matching_simple",
    "mis_consecutive",
    "mis_hedged",
    "mis_interleaved",
    "mis_parallel",
    "mis_simple",
    "run",
    "run_with_trace",
    "schedules",
]
