"""The (Δ+1)-Vertex Coloring problem (Section 8.2).

Each node outputs a color in ``{1, ..., Δ+1}`` different from all its
neighbors' colors.  The problem is a special case of list vertex coloring:
a partial solution is extendable exactly when it is a proper partial
coloring with legal colors — every active node's remaining palette (the
colors not output by its neighbors) stays larger than its remaining
degree, so any remainder solution completes it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem, Outputs


class VertexColoringProblem(GraphProblem):
    """(Δ+1)-Vertex Coloring: outputs are colors in ``{1, ..., Δ+1}``."""

    name = "vertex-coloring"

    def num_colors(self, graph: DistGraph) -> int:
        """The palette size for this instance: Δ + 1 (at least 1)."""
        return graph.delta + 1

    # ------------------------------------------------------------------
    def verify_solution(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        problems = self.check_outputs_complete(graph, outputs)
        if problems:
            return problems
        problems.extend(self.verify_partial(graph, outputs))
        return problems

    def verify_partial(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        problems: List[str] = []
        palette_size = self.num_colors(graph)
        for node, color in sorted(outputs.items()):
            if not isinstance(color, int) or not 1 <= color <= palette_size:
                problems.append(
                    f"node {node} output {color!r}, expected a color in "
                    f"1..{palette_size}"
                )
        for node, color in sorted(outputs.items()):
            for other in graph.neighbors(node):
                if other > node and outputs.get(other) == color:
                    problems.append(
                        f"adjacent nodes {node} and {other} share color {color}"
                    )
        return problems

    def extendability_violations(
        self, graph: DistGraph, outputs: Outputs
    ) -> List[str]:
        """For (Δ+1)-coloring every proper partial coloring is extendable.

        Each active node always retains more palette colors than active
        neighbors (Section 8.2), so the only way to break extendability is
        to break properness or the color range.
        """
        return self.verify_partial(graph, outputs)

    # ------------------------------------------------------------------
    def solve_sequential(
        self, graph: DistGraph, order: Optional[Sequence[int]] = None
    ) -> Outputs:
        """Greedy coloring: each node takes the smallest free color."""
        order = list(order) if order is not None else list(graph.nodes)
        colors: Outputs = {}
        for node in order:
            used: Set[int] = {
                colors[other] for other in graph.neighbors(node) if other in colors
            }
            color = 1
            while color in used:
                color += 1
            colors[node] = color
        return colors

    def remaining_palette(
        self, graph: DistGraph, outputs: Outputs, node: int
    ) -> Set[int]:
        """Colors still available to an undecided node under ``outputs``."""
        used = {
            outputs[other] for other in graph.neighbors(node) if other in outputs
        }
        return set(range(1, self.num_colors(graph) + 1)) - used


#: Singleton instance used throughout the repository.
VERTEX_COLORING = VertexColoringProblem()
