"""Distributed graph problem definitions.

Each problem module defines the output convention of Section 2/8 of the
paper, full- and partial-solution verifiers, the *extendable partial
solution* checker central to the framework (Section 3), and a greedy
sequential solver used to manufacture perfect predictions and to
cross-check distributed outputs.
"""

from repro.problems.base import GraphProblem
from repro.problems.edge_coloring import EDGE_COLORING, EdgeColoringProblem
from repro.problems.matching import MATCHING, MaximalMatchingProblem, UNMATCHED
from repro.problems.mis import MIS, MaximalIndependentSetProblem
from repro.problems.vertex_coloring import VERTEX_COLORING, VertexColoringProblem

__all__ = [
    "EDGE_COLORING",
    "EdgeColoringProblem",
    "GraphProblem",
    "MATCHING",
    "MIS",
    "MaximalIndependentSetProblem",
    "MaximalMatchingProblem",
    "UNMATCHED",
    "VERTEX_COLORING",
    "VertexColoringProblem",
]
