"""Distributed graph problem definitions.

Each problem module defines the output convention of Section 2/8 of the
paper, full- and partial-solution verifiers, the *extendable partial
solution* checker central to the framework (Section 3), and a greedy
sequential solver used to manufacture perfect predictions and to
cross-check distributed outputs.
"""

from repro.problems.base import GraphProblem
from repro.problems.edge_coloring import EDGE_COLORING, EdgeColoringProblem
from repro.problems.matching import MATCHING, MaximalMatchingProblem, UNMATCHED
from repro.problems.mis import MIS, MaximalIndependentSetProblem
from repro.problems.vertex_coloring import VERTEX_COLORING, VertexColoringProblem

#: The paper's four problems, by short name.
PROBLEMS = {
    MIS.name: MIS,
    MATCHING.name: MATCHING,
    VERTEX_COLORING.name: VERTEX_COLORING,
    EDGE_COLORING.name: EDGE_COLORING,
}


def solution_size(outputs, problem_name=None):
    """Size of a solution in a problem-appropriate sense.

    For MIS-style 0/1 outputs this is the number of nodes outputting 1
    (the independent set's size); for every other problem it is the
    number of decided nodes.  The single definition is shared by the
    sweep executor and the fault harness so the two report identical
    ``solution_size`` columns.
    """
    if problem_name == MIS.name:
        return sum(1 for value in outputs.values() if value == 1)
    return len(outputs)


def get_problem(name):
    """The problem instance for a short name (or the instance itself).

    Accepts a :class:`GraphProblem` unchanged so call sites can take
    either form — sweep cells, for example, name problems by string to
    stay picklable.
    """
    if isinstance(name, GraphProblem):
        return name
    try:
        return PROBLEMS[name]
    except KeyError:
        known = ", ".join(sorted(PROBLEMS))
        raise KeyError(f"unknown problem {name!r}; known problems: {known}") from None


__all__ = [
    "PROBLEMS",
    "get_problem",
    "solution_size",
    "EDGE_COLORING",
    "EdgeColoringProblem",
    "GraphProblem",
    "MATCHING",
    "MIS",
    "MaximalIndependentSetProblem",
    "MaximalMatchingProblem",
    "UNMATCHED",
    "VERTEX_COLORING",
    "VertexColoringProblem",
]
