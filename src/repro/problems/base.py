"""The abstract problem interface.

A :class:`GraphProblem` bundles everything the framework needs to know
about one distributed graph problem: how to check a complete solution, how
to check a partial solution, when a partial solution is *extendable*
(Section 3: a partial solution that together with *any* solution on the
remainder yields a solution on the whole graph), and how to solve the
problem sequentially (to manufacture perfect predictions).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Sequence

from repro.graphs.graph import DistGraph

#: A (possibly partial) assignment of outputs: node id -> output value.
Outputs = Dict[int, Any]


class GraphProblem(ABC):
    """Definition of one distributed graph problem.

    Subclasses provide verifiers and a sequential solver; all methods are
    pure functions of the instance and the outputs, so they are usable both
    by tests and by the error-measure machinery.
    """

    #: Short problem name (e.g. ``"mis"``).
    name: str = ""

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    @abstractmethod
    def verify_solution(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        """Check a complete solution; return a list of violations."""

    @abstractmethod
    def verify_partial(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        """Check a partial solution on the subgraph induced by its nodes."""

    @abstractmethod
    def extendability_violations(
        self, graph: DistGraph, outputs: Outputs
    ) -> List[str]:
        """Check that a partial solution is extendable; return violations.

        The conditions checked are those the paper's algorithms guarantee
        (e.g. for MIS: the 1-nodes are independent in the *whole* graph,
        every neighbor of a 1-node is a decided 0, every decided 0 has a
        decided 1-neighbor).  They are sufficient for extendability; see
        each problem module for the exact characterization used.
        """

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def is_solution(self, graph: DistGraph, outputs: Outputs) -> bool:
        """Whether ``outputs`` is a complete, correct solution."""
        return not self.verify_solution(graph, outputs)

    def is_extendable(self, graph: DistGraph, outputs: Outputs) -> bool:
        """Whether the partial solution is extendable."""
        return not self.extendability_violations(graph, outputs)

    # ------------------------------------------------------------------
    # Sequential solving
    # ------------------------------------------------------------------
    @abstractmethod
    def solve_sequential(
        self, graph: DistGraph, order: Optional[Sequence[int]] = None
    ) -> Outputs:
        """Produce a correct complete solution by a greedy sequential pass.

        ``order`` fixes the processing order of nodes (default: increasing
        identifier); different orders produce different correct solutions,
        which is how experiments sample the solution space.
        """

    def check_outputs_complete(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        """Violations for outputs that do not cover every node."""
        missing = [node for node in graph.nodes if node not in outputs]
        if missing:
            return [f"missing outputs for nodes {missing[:10]}"]
        return []


def decided_nodes(outputs: Outputs) -> List[int]:
    """Nodes that have produced an output, sorted."""
    return sorted(outputs)
