"""The Maximal Matching problem (Section 8.1).

Each node outputs the identifier of the neighbor it is matched to, or
``UNMATCHED`` (the paper's ⊥).  When all nodes have terminated,
``y_i = j`` iff ``y_j = i``, and every unmatched node has only matched
neighbors.  Predictions are a predicted partner (or ⊥) per node.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem, Outputs

#: The ⊥ output: the node ends up unmatched.
UNMATCHED = "unmatched"


class MaximalMatchingProblem(GraphProblem):
    """Maximal Matching: outputs are partner ids or ``UNMATCHED``."""

    name = "matching"

    # ------------------------------------------------------------------
    def verify_solution(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        problems = self.check_outputs_complete(graph, outputs)
        if problems:
            return problems
        problems.extend(self._check_consistency(graph, outputs))
        return problems

    def verify_partial(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        return self._check_consistency(graph, outputs)

    def _check_consistency(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        problems: List[str] = []
        for node, value in sorted(outputs.items()):
            if value == UNMATCHED:
                continue
            if value not in graph.neighbors(node):
                problems.append(f"node {node} matched to non-neighbor {value!r}")
                continue
            partner_value = outputs.get(value)
            if partner_value != node:
                problems.append(
                    f"match {node}->{value} not reciprocated "
                    f"(partner output {partner_value!r})"
                )
        for node, value in sorted(outputs.items()):
            if value != UNMATCHED:
                continue
            for other in graph.neighbors(node):
                if other in outputs and outputs[other] == UNMATCHED and other > node:
                    problems.append(f"adjacent unmatched nodes {node} and {other}")
        return problems

    def extendability_violations(
        self, graph: DistGraph, outputs: Outputs
    ) -> List[str]:
        """Extendability for Maximal Matching (Section 8.1).

        A partial solution is extendable when matched pairs are mutual
        edges, and every ⊥-node's neighbors are all decided and matched —
        otherwise a remainder solution could leave an edge between two
        unmatched nodes.
        """
        problems = self._check_consistency(graph, outputs)
        for node, value in sorted(outputs.items()):
            if value != UNMATCHED:
                continue
            for other in graph.neighbors(node):
                if other not in outputs:
                    problems.append(
                        f"unmatched node {node} has undecided neighbor {other}"
                    )
                elif outputs[other] == UNMATCHED:
                    pass  # already reported by the consistency check
        return problems

    # ------------------------------------------------------------------
    def solve_sequential(
        self, graph: DistGraph, order: Optional[Sequence[int]] = None
    ) -> Outputs:
        """Greedy maximal matching: match each node to its first free neighbor."""
        order = list(order) if order is not None else list(graph.nodes)
        position = {node: index for index, node in enumerate(order)}
        partner = {}
        for node in order:
            if node in partner:
                continue
            candidates = sorted(
                (other for other in graph.neighbors(node) if other not in partner),
                key=lambda other: position.get(other, other),
            )
            if candidates:
                other = candidates[0]
                partner[node] = other
                partner[other] = node
        return {
            node: partner.get(node, UNMATCHED) for node in graph.nodes
        }

    # ------------------------------------------------------------------
    def matched_edges(self, outputs: Outputs) -> Set[Tuple[int, int]]:
        """The matching as a set of ``(min, max)`` edges."""
        edges = set()
        for node, value in outputs.items():
            if value != UNMATCHED and outputs.get(value) == node:
                edges.add((min(node, value), max(node, value)))
        return edges


#: Singleton instance used throughout the repository.
MATCHING = MaximalMatchingProblem()
