"""The (2Δ−1)-Edge Coloring problem (Section 8.3).

Each node outputs one color per incident edge (possibly in different
rounds); both endpoints of an edge must output the same color for it, and
all edges incident to a node get distinct colors from ``{1, ..., 2Δ−1}``.
A node's output is represented as a dict ``neighbor id -> color``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem, Outputs


class EdgeColoringProblem(GraphProblem):
    """(2Δ−1)-Edge Coloring: outputs map each incident edge to a color."""

    name = "edge-coloring"

    def num_colors(self, graph: DistGraph) -> int:
        """The palette size for this instance: 2Δ − 1 (at least 1)."""
        return max(1, 2 * graph.delta - 1)

    # ------------------------------------------------------------------
    def verify_solution(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        problems = self.check_outputs_complete(graph, outputs)
        if problems:
            return problems
        for node in graph.nodes:
            value = outputs[node] or {}
            missing = set(graph.neighbors(node)) - set(value)
            if missing:
                problems.append(
                    f"node {node} left edges to {sorted(missing)} uncolored"
                )
        problems.extend(self.verify_partial(graph, outputs))
        return problems

    def verify_partial(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        problems: List[str] = []
        palette_size = self.num_colors(graph)
        for node, value in sorted(outputs.items()):
            value = value or {}
            if not isinstance(value, dict):
                problems.append(
                    f"node {node} output {value!r}, expected a dict edge->color"
                )
                continue
            for other, color in sorted(value.items()):
                if other not in graph.neighbors(node):
                    problems.append(
                        f"node {node} colored non-incident edge to {other}"
                    )
                    continue
                if not isinstance(color, int) or not 1 <= color <= palette_size:
                    problems.append(
                        f"edge ({node},{other}) got {color!r}, expected a color "
                        f"in 1..{palette_size}"
                    )
                partner_value = outputs.get(other)
                if partner_value is not None and other in outputs:
                    partner_color = (partner_value or {}).get(node)
                    if other > node and partner_color != color:
                        problems.append(
                            f"edge ({node},{other}) colored {color} by {node} "
                            f"but {partner_color!r} by {other}"
                        )
            colors_used = list((value or {}).values())
            if len(colors_used) != len(set(colors_used)):
                problems.append(f"node {node} reused a color on two edges")
        return problems

    def extendability_violations(
        self, graph: DistGraph, outputs: Outputs
    ) -> List[str]:
        """Any proper partial (2Δ−1)-edge-coloring is extendable.

        Each uncolored edge always retains a palette (colors unused at both
        endpoints) larger than the number of adjacent uncolored edges
        (Section 8.3), so properness is the whole condition.
        """
        return self.verify_partial(graph, outputs)

    # ------------------------------------------------------------------
    def solve_sequential(
        self, graph: DistGraph, order: Optional[Sequence[int]] = None
    ) -> Outputs:
        """Greedy edge coloring: each edge takes the smallest free color.

        Edges are processed in the order induced by ``order`` on their
        endpoints (lexicographic by position).
        """
        node_order = list(order) if order is not None else list(graph.nodes)
        position = {node: index for index, node in enumerate(node_order)}
        edges = sorted(
            graph.edges(),
            key=lambda edge: tuple(sorted((position[edge[0]], position[edge[1]]))),
        )
        used_at: Dict[int, Set[int]] = {node: set() for node in graph.nodes}
        edge_color: Dict[Tuple[int, int], int] = {}
        for u, v in edges:
            color = 1
            while color in used_at[u] or color in used_at[v]:
                color += 1
            edge_color[(u, v)] = color
            used_at[u].add(color)
            used_at[v].add(color)
        outputs: Outputs = {node: {} for node in graph.nodes}
        for (u, v), color in edge_color.items():
            outputs[u][v] = color
            outputs[v][u] = color
        return outputs

    # ------------------------------------------------------------------
    def colored_edges(self, outputs: Outputs) -> Dict[Tuple[int, int], int]:
        """Edges colored consistently by both endpoints, as ``(min, max)``."""
        result: Dict[Tuple[int, int], int] = {}
        for node, value in outputs.items():
            for other, color in (value or {}).items():
                partner = outputs.get(other) or {}
                if partner.get(node) == color:
                    result[(min(node, other), max(node, other))] = color
        return result


#: Singleton instance used throughout the repository.
EDGE_COLORING = EdgeColoringProblem()
