"""The Maximal Independent Set problem (Section 3).

Each node outputs a bit; the nodes outputting 1 must form a maximal
independent set.  Predictions are one bit per node (1 = predicted in the
set).  The two kinds of prediction error (Section 1.1): two adjacent nodes
both predicted 1 (not independent), or a node and all its neighbors
predicted 0 (not maximal).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set

from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem, Outputs


class MaximalIndependentSetProblem(GraphProblem):
    """MIS: output 1 to join the independent set, 0 otherwise."""

    name = "mis"

    # ------------------------------------------------------------------
    def verify_solution(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        problems = self.check_outputs_complete(graph, outputs)
        if problems:
            return problems
        problems.extend(self.verify_partial(graph, outputs))
        return problems

    def verify_partial(self, graph: DistGraph, outputs: Outputs) -> List[str]:
        """MIS conditions on the subgraph induced by the decided nodes.

        The adjacency scans walk the CSR rows directly (ascending-id
        streams), so both checks run over flat index arrays instead of
        per-node set objects and report violations in deterministic order.
        """
        problems: List[str] = []
        for node, value in outputs.items():
            if value not in (0, 1):
                problems.append(f"node {node} output {value!r}, expected 0 or 1")
        chosen = {node for node, value in outputs.items() if value == 1}
        csr = graph.csr
        for node in sorted(chosen):
            for other in csr.neighbor_ids(node):
                if other > node and other in chosen:
                    problems.append(f"adjacent nodes {node} and {other} both output 1")
        for node, value in outputs.items():
            if value == 0 and not any(
                other in chosen for other in csr.neighbor_ids(node)
            ):
                problems.append(f"node {node} output 0 without a decided 1-neighbor")
        return problems

    def extendability_violations(
        self, graph: DistGraph, outputs: Outputs
    ) -> List[str]:
        """The paper's extendability conditions for MIS (Section 3).

        A partial solution is extendable exactly when:

        * the 1-nodes form an independent set of the whole graph;
        * every neighbor of a 1-node is decided (necessarily 0);
        * every decided 0-node has a decided 1-neighbor (this is already
          part of being a *partial solution* — a valid MIS of the induced
          subgraph — and is what every algorithm in the paper guarantees:
          a node outputs 0 only after seeing a neighbor output 1).

        Together the conditions are necessary and sufficient; the
        exhaustive small-graph suite verifies agreement with brute force
        over every partial assignment of every 4-node graph.
        """
        problems: List[str] = []
        chosen = {node for node, value in outputs.items() if value == 1}
        for node in sorted(chosen):
            for other in sorted(graph.neighbors(node)):
                if other in chosen and other > node:
                    problems.append(f"adjacent 1-nodes {node}, {other}")
                if other not in outputs:
                    problems.append(
                        f"neighbor {other} of 1-node {node} is undecided"
                    )
        for node, value in sorted(outputs.items()):
            if value == 0 and not any(
                other in chosen for other in graph.neighbors(node)
            ):
                problems.append(f"0-node {node} has no decided 1-neighbor")
        return problems

    # ------------------------------------------------------------------
    def solve_sequential(
        self, graph: DistGraph, order: Optional[Sequence[int]] = None
    ) -> Outputs:
        """Greedy MIS: scan nodes in order, add when no neighbor is in yet."""
        order = list(order) if order is not None else list(graph.nodes)
        chosen: Set[int] = set()
        for node in order:
            if not any(other in chosen for other in graph.neighbors(node)):
                chosen.add(node)
        return {node: (1 if node in chosen else 0) for node in graph.nodes}

    # ------------------------------------------------------------------
    # Exact machinery for small instances (tests and the η_H measure)
    # ------------------------------------------------------------------
    def all_maximal_independent_sets(self, graph: DistGraph) -> Iterable[Set[int]]:
        """Enumerate every maximal independent set (small graphs only).

        Maximal independent sets of ``G`` are the maximal cliques of the
        complement; we enumerate with a simple Bron–Kerbosch on the
        complement adjacency, adequate for the instance sizes where exact
        enumeration is ever needed.
        """
        nodes = list(graph.nodes)
        complement = {
            v: {u for u in nodes if u != v and not graph.has_edge(u, v)}
            for v in nodes
        }

        results: List[Set[int]] = []

        def expand(r: Set[int], p: Set[int], x: Set[int]) -> None:
            if not p and not x:
                results.append(set(r))
                return
            pivot_pool = p | x
            pivot = max(pivot_pool, key=lambda v: len(complement[v] & p))
            for v in sorted(p - complement[pivot]):
                expand(r | {v}, p & complement[v], x & complement[v])
                p = p - {v}
                x = x | {v}

        expand(set(), set(nodes), set())
        return results

    def is_extendable_exact(self, graph: DistGraph, outputs: Outputs) -> bool:
        """Brute-force extendability (exponential; tests only).

        Checks that for *every* maximal independent set of the remainder
        graph, the union with the partial solution solves the whole graph.
        """
        if self.verify_partial(graph, outputs):
            return False
        remainder_nodes = [node for node in graph.nodes if node not in outputs]
        remainder = graph.subgraph(remainder_nodes)
        remainder_solutions = self.all_maximal_independent_sets(remainder)
        for chosen in remainder_solutions:
            combined = dict(outputs)
            combined.update(
                {node: (1 if node in chosen else 0) for node in remainder_nodes}
            )
            if self.verify_solution(graph, combined):
                return False
        return True

    def independent_set_of(self, outputs: Outputs) -> Set[int]:
        """The set of nodes with output 1."""
        return {node for node, value in outputs.items() if value == 1}


#: Singleton instance used throughout the repository.
MIS = MaximalIndependentSetProblem()
