"""Declarative fault plans.

A :class:`FaultPlan` describes *what* goes wrong in a run without saying
anything about *how* the engine realizes it: which nodes crash (and
whether they come back), which message adversary acts on the channel, and
whether predictions are corrupted before the run starts.  Plans are
frozen dataclasses — hashable, comparable, and safely shareable between
runs — and every random choice they induce is derived from the plan's
``seed``, never from global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, FrozenSet, Mapping, Optional, Tuple

#: Undirected edge key: ``(min(u, v), max(u, v))``.
EdgeKey = Tuple[int, int]


def edge_key(u: int, v: int) -> EdgeKey:
    """Canonical undirected key for the channel between ``u`` and ``v``."""
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class CrashFault:
    """One node fault.

    Attributes:
        node: The node to remove.
        round: The round after which the node vanishes; it executes that
            round fully and then stops (round 0 = crash during setup).
        recover_after: When set, the node rejoins ``recover_after`` rounds
            later (at the start of round ``round + recover_after``) with
            *reset* state: a fresh program instance and a fresh context
            that sees the current termination/crash status of its
            neighbors but remembers nothing it computed before the crash.
            ``None`` means crash-stop.
    """

    node: int
    round: int
    recover_after: Optional[int] = None

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError(f"crash round must be >= 0, got {self.round}")
        if self.recover_after is not None and self.recover_after < 1:
            raise ValueError(
                f"recover_after must be >= 1, got {self.recover_after}"
            )

    @property
    def recovery_round(self) -> Optional[int]:
        """Round at whose start the node rejoins, or ``None``."""
        if self.recover_after is None:
            return None
        return self.round + self.recover_after


@dataclass(frozen=True)
class MessageAdversary:
    """A seeded adversary acting on the message channel.

    Each message is subjected, independently and in this order, to a
    drop / corrupt / duplicate decision; a dropped message is neither
    corrupted nor duplicated.  A duplicate is a *replay*: one extra copy
    of the (possibly corrupted) payload is delivered in the following
    round, unless a fresh message from the same sender supersedes it.

    Attributes:
        drop_rate: Probability a message disappears in transit.
        corrupt_rate: Probability the payload is mangled.
        duplicate_rate: Probability an extra copy arrives next round.
        edges: When set, only channels in this set (undirected keys from
            :func:`edge_key`) are attacked; ``None`` attacks every edge.
        corrupter: Optional ``(payload, rng) -> payload`` override for the
            corruption function (default: :func:`default_corrupter`).
    """

    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    duplicate_rate: float = 0.0
    edges: Optional[FrozenSet[EdgeKey]] = None
    corrupter: Optional[Callable[[Any, Any], Any]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        for name in ("drop_rate", "corrupt_rate", "duplicate_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")

    @property
    def is_active(self) -> bool:
        """Whether this adversary can ever touch a message."""
        return bool(self.drop_rate or self.corrupt_rate or self.duplicate_rate)

    def attacks(self, sender: int, receiver: int) -> bool:
        """Whether the channel between the two nodes is in scope."""
        return self.edges is None or edge_key(sender, receiver) in self.edges


@dataclass(frozen=True)
class PredictionAdversary:
    """Corrupts a fraction of prediction entries before the run.

    Robustness (Section 1.1) demands graceful behaviour under arbitrarily
    bad predictions; this adversary manufactures them in a seeded,
    reproducible way on top of whatever predictions the experiment built.

    Attributes:
        flip_rate: Probability each node's prediction entry is corrupted.
        flipper: Optional ``(value, rng, all_values) -> value`` override;
            the default flips 0/1 bits and otherwise substitutes another
            node's prediction value.
    """

    flip_rate: float = 0.0
    flipper: Optional[Callable[[Any, Any, Any], Any]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.flip_rate <= 1.0:
            raise ValueError(f"flip_rate must be in [0, 1], got {self.flip_rate}")


def default_corrupter(payload: Any, rng: Any) -> Any:
    """Deterministically mangle a payload (the default corruption).

    The result is structurally similar but semantically wrong: booleans
    flip, integers get their low bit flipped, strings lose their first
    character to a ``?``, containers have one element corrupted.  The
    point is a *plausible* wrong value — the kind a real bit-flip or
    truncation produces — not an obviously-invalid sentinel.
    """
    if isinstance(payload, bool):
        return not payload
    if isinstance(payload, int):
        return payload ^ 1
    if isinstance(payload, float):
        return -payload if payload else 1.0
    if isinstance(payload, str):
        return "?" + payload[1:] if payload else "?"
    if isinstance(payload, tuple) and payload:
        index = rng.randrange(len(payload))
        return payload[:index] + (default_corrupter(payload[index], rng),) + payload[index + 1 :]
    if isinstance(payload, list) and payload:
        index = rng.randrange(len(payload))
        copy = list(payload)
        copy[index] = default_corrupter(copy[index], rng)
        return copy
    if isinstance(payload, dict) and payload:
        key = sorted(payload, key=repr)[rng.randrange(len(payload))]
        copy = dict(payload)
        copy[key] = default_corrupter(copy[key], rng)
        return copy
    if payload is None:
        return 0
    return payload


@dataclass(frozen=True)
class FaultPlan:
    """Everything that goes wrong in one run, declaratively.

    Attributes:
        crashes: Node faults (:class:`CrashFault`), any order.
        messages: Optional :class:`MessageAdversary` on the channel.
        predictions: Optional :class:`PredictionAdversary` applied to the
            prediction mapping before contexts are built.
        seed: Base seed for every adversarial coin flip.  Two runs of the
            same plan with the same seed make identical decisions.
    """

    crashes: Tuple[CrashFault, ...] = ()
    messages: Optional[MessageAdversary] = None
    predictions: Optional[PredictionAdversary] = None
    seed: int = 0

    def __post_init__(self) -> None:
        seen = set()
        for crash in self.crashes:
            if crash.node in seen:
                raise ValueError(f"node {crash.node} has multiple crash faults")
            seen.add(crash.node)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_crash_rounds(
        cls, crash_rounds: Mapping[int, int], seed: int = 0
    ) -> "FaultPlan":
        """The engine's historical ``crash_rounds`` mapping, as a plan
        (alias of :meth:`crash_stop`)."""
        return cls.crash_stop(crash_rounds, seed=seed)

    @classmethod
    def crash_stop(
        cls, crash_rounds: Mapping[int, int], seed: int = 0
    ) -> "FaultPlan":
        """Crash-stop faults from a ``node -> round`` mapping.

        The named successor of the engine's deprecated ``crash_rounds=``
        parameter: each node executes its round fully and then vanishes
        without output, never to return.
        """
        crashes = tuple(
            CrashFault(node, round_index)
            for node, round_index in sorted(crash_rounds.items())
        )
        return cls(crashes=crashes, seed=seed)

    @classmethod
    def message_loss(cls, rate: float, seed: int = 0) -> "FaultPlan":
        """A plan whose only fault is uniform message loss."""
        return cls(messages=MessageAdversary(drop_rate=rate), seed=seed)

    def with_crash_rounds(self, crash_rounds: Mapping[int, int]) -> "FaultPlan":
        """This plan plus crash-stop faults from a ``crash_rounds`` map."""
        extra = tuple(
            CrashFault(node, round_index)
            for node, round_index in sorted(crash_rounds.items())
        )
        return replace(self, crashes=self.crashes + extra)

    # ------------------------------------------------------------------
    def build_controller(self):
        """The engine-facing :class:`~repro.faults.controller.FaultController`."""
        from repro.faults.controller import FaultController

        return FaultController(self)
