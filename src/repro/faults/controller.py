"""The engine-facing fault controller.

A :class:`FaultController` turns a declarative
:class:`~repro.faults.plan.FaultPlan` into the narrow hook API the
:class:`~repro.simulator.engine.SyncEngine` interposes in its
compose/deliver path:

* :meth:`corrupt_predictions` — applied once, before contexts are built;
* :meth:`message_fate` — applied per message, between the sender's
  ``compose`` and delivery;
* :meth:`crashes_at` / :meth:`recoveries_at` — applied at the end /
  start of each round.

Determinism contract: every decision is computed from a fresh
``random.Random`` keyed on ``(seed, round, sender, receiver)`` (or
``(seed, node)`` for predictions), so outcomes do not depend on
iteration order, on how many messages other nodes sent, or on any global
RNG state.  This is the property the EXPERIMENTS methodology rests on:
re-running a faulty benchmark reproduces it bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping

from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    default_corrupter,
)


@dataclass(frozen=True)
class MessageFate:
    """What the adversary decided for one message.

    Attributes:
        payload: The payload to deliver (corrupted when ``corrupted``).
        dropped: The message never arrives (payload is the original).
        corrupted: The payload was mangled in transit.
        duplicate: One extra copy arrives in the following round.
    """

    payload: Any
    dropped: bool = False
    corrupted: bool = False
    duplicate: bool = False


#: Fate of a message no adversary touches (shared, immutable-per-payload).
def _untouched(payload: Any) -> MessageFate:
    return MessageFate(payload=payload)


class FaultController:
    """Realizes a :class:`FaultPlan` against the engine's hook API."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._seed = plan.seed
        self._crashes_by_round: Dict[int, List[int]] = {}
        self._recoveries_by_round: Dict[int, List[int]] = {}
        for crash in plan.crashes:
            self._register(crash)

    # ------------------------------------------------------------------
    # Crash / recovery schedule
    # ------------------------------------------------------------------
    def _register(self, crash: CrashFault) -> None:
        self._crashes_by_round.setdefault(crash.round, []).append(crash.node)
        recovery = crash.recovery_round
        if recovery is not None:
            self._recoveries_by_round.setdefault(recovery, []).append(crash.node)

    def add_crash_rounds(self, crash_rounds: Mapping[int, int]) -> None:
        """Merge the engine's back-compat ``crash_rounds`` mapping in."""
        for node, round_index in sorted(crash_rounds.items()):
            self._register(CrashFault(node, round_index))

    def crashes_at(self, round_index: int) -> List[int]:
        """Nodes whose crash fault fires at the end of this round."""
        return sorted(self._crashes_by_round.get(round_index, []))

    def recoveries_at(self, round_index: int) -> List[int]:
        """Nodes rejoining at the start of this round."""
        return sorted(self._recoveries_by_round.get(round_index, []))

    def last_recovery_round(self) -> int:
        """Last round with a scheduled recovery (0 when there is none).

        Lets the engine keep a run alive across a window in which every
        node is momentarily crashed but rejoins are still due.
        """
        return max(self._recoveries_by_round, default=0)

    # ------------------------------------------------------------------
    # Message adversary
    # ------------------------------------------------------------------
    def message_fate(
        self, round_index: int, sender: int, receiver: int, payload: Any
    ) -> MessageFate:
        """Drop / corrupt / duplicate decision for one message.

        Deterministic per ``(plan.seed, round, sender, receiver)``; the
        three decisions are drawn in a fixed order so adding, say, a
        corruption rate never changes which messages are dropped.
        """
        adversary = self.plan.messages
        if adversary is None or not adversary.is_active:
            return _untouched(payload)
        if not adversary.attacks(sender, receiver):
            return _untouched(payload)
        rng = random.Random(f"{self._seed}:msg:{round_index}:{sender}:{receiver}")
        if rng.random() < adversary.drop_rate:
            return MessageFate(payload=payload, dropped=True)
        corrupted = rng.random() < adversary.corrupt_rate
        if corrupted:
            corrupter = adversary.corrupter or default_corrupter
            payload = corrupter(payload, rng)
        duplicate = rng.random() < adversary.duplicate_rate
        return MessageFate(payload=payload, corrupted=corrupted, duplicate=duplicate)

    # ------------------------------------------------------------------
    # Prediction adversary
    # ------------------------------------------------------------------
    def corrupt_predictions(
        self, predictions: Mapping[int, Any], nodes: Iterable[int]
    ) -> Dict[int, Any]:
        """Flip a fraction of prediction entries, deterministically.

        ``nodes`` fixes the population (and hence the pool of substitute
        values) independently of which nodes happen to have predictions.
        """
        adversary = self.plan.predictions
        corrupted = dict(predictions)
        if adversary is None or adversary.flip_rate <= 0.0:
            return corrupted
        ordered = sorted(nodes)
        values = [predictions.get(node) for node in ordered]
        for node in ordered:
            if node not in corrupted:
                continue
            rng = random.Random(f"{self._seed}:pred:{node}")
            if rng.random() >= adversary.flip_rate:
                continue
            value = corrupted[node]
            if adversary.flipper is not None:
                corrupted[node] = adversary.flipper(value, rng, values)
            elif value in (0, 1):
                corrupted[node] = 1 - value
            elif values:
                corrupted[node] = values[rng.randrange(len(values))]
        return corrupted
