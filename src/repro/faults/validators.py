"""Safety validation of faulty runs.

After a run under fault injection, the interesting question is not "is
the output a complete solution?" (it usually cannot be — crashed nodes
never output) but "is what the *survivors* produced legal?".  These
checkers answer that:

* :func:`survivor_nodes` — nodes that were never removed, or that
  recovered and stayed;
* :func:`survivor_violations` — safety violations among the survivors'
  partial outputs (independence/domination for MIS, partial-solution
  legality for the other problems);
* :func:`survivor_coverage` — the fraction of survivors that decided,
  the degradation benchmark's quality axis.

The MIS check is problem-specific on purpose: a surviving 0-node may be
legitimately dominated by a node that terminated with output 1 *before*
a later fault removed a neighbor — checking the induced surviving
subgraph alone would report a false violation, so domination is checked
against every recorded output while independence is checked outright.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.graphs.graph import DistGraph
from repro.problems.base import GraphProblem
from repro.simulator.metrics import RunResult


def survivor_nodes(result: RunResult) -> List[int]:
    """Nodes that ended the run un-crashed (including recovered ones)."""
    return sorted(
        node for node, record in result.records.items() if not record.crashed
    )


def survivor_coverage(result: RunResult) -> float:
    """Fraction of surviving nodes that produced an output.

    1.0 for a clean complete run; degrades as faults prevent survivors
    from deciding within the round budget.  Defined as 1.0 when no node
    survived (there was nobody left to fail).
    """
    survivors = survivor_nodes(result)
    if not survivors:
        return 1.0
    decided = sum(1 for node in survivors if node in result.outputs)
    return decided / len(survivors)


def survivor_violations(
    problem: GraphProblem, graph: DistGraph, result: RunResult
) -> List[str]:
    """Safety violations among the surviving subgraph's partial outputs.

    Undecided survivors are *not* violations (that is a coverage /
    liveness question); only decided outputs can be unsafe.
    """
    survivors = set(survivor_nodes(result))
    outputs = result.outputs
    if problem.name == "mis":
        return _mis_survivor_violations(graph, survivors, outputs)
    decided = [node for node in survivors if node in outputs]
    induced = graph.subgraph(decided, name=f"{graph.name}|survivors")
    return problem.verify_partial(
        induced, {node: outputs[node] for node in decided}
    )


def _mis_survivor_violations(
    graph: DistGraph, survivors: set, outputs: Dict[int, Any]
) -> List[str]:
    violations: List[str] = []
    for node in sorted(survivors & set(outputs)):
        if outputs[node] not in (0, 1):
            violations.append(
                f"node {node} output {outputs[node]!r}, expected 0 or 1"
            )
    # Independence is absolute: two adjacent 1s are wrong no matter who
    # crashed afterwards (a node can only output by terminating cleanly).
    ones = {node for node, value in outputs.items() if value == 1}
    for node in sorted(ones):
        for other in sorted(graph.neighbors(node) & ones):
            if other > node:
                violations.append(f"adjacent nodes {node} and {other} both output 1")
    # Domination may come from any decided 1 — including a node removed by
    # a later fault: its output was announced before it vanished.
    for node in sorted(survivors):
        if outputs.get(node) == 0 and not (graph.neighbors(node) & ones):
            violations.append(f"node {node} output 0 without any 1-neighbor")
    return violations
