"""The robustness harness: degradation sweeps under fault injection.

Sweeps a fault dimension (message-loss rate, optionally combined with
crash / crash-recovery faults) over seeded runs and records, per point,
how the execution *degraded*: rounds actually executed, survivor
coverage (fraction of un-crashed nodes that decided), solution size and
safety-validator verdicts.  This is the engine behind the ``repro
faults`` CLI command and ``benchmarks/bench_e25_fault_degradation.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.algorithm import DistributedAlgorithm
from repro.core.runner import run
from repro.faults.plan import CrashFault, FaultPlan, MessageAdversary
from repro.faults.validators import (
    survivor_coverage,
    survivor_nodes,
    survivor_violations,
)
from repro.graphs.graph import DistGraph
from repro.problems import solution_size
from repro.problems.base import GraphProblem

#: Either a fixed prediction mapping or a per-seed factory.
PredictionSource = Union[Mapping[int, Any], Callable[[int], Mapping[int, Any]]]


@dataclass
class DegradationPoint:
    """One run of a degradation sweep.

    Attributes:
        graph: Name of the instance.
        drop_rate: Message-loss rate of this point.
        crash_fraction: Fraction of nodes given crash faults.
        recovery: Whether crashed nodes were scheduled to rejoin.
        seed: The run's seed (predictions, adversary and crash draw).
        rounds: Last-termination round (the paper's measure).
        rounds_executed: Rounds the engine actually ran.
        survivors: Number of un-crashed nodes at the end.
        coverage: Fraction of survivors that decided.
        solution_size: Number of nodes outputting 1 (MIS-style problems;
            for other problems, the number of decided survivors).
        violations: Safety violations among survivors (must be empty).
        stuck: Whether the run hit its round budget (graceful mode).
        dropped: Messages removed by the adversary.
    """

    graph: str
    drop_rate: float
    crash_fraction: float
    recovery: bool
    seed: int
    rounds: int
    rounds_executed: int
    survivors: int
    coverage: float
    solution_size: int
    violations: List[str] = field(default_factory=list)
    stuck: bool = False
    dropped: int = 0


def random_crash_plan(
    graph: DistGraph,
    fraction: float,
    *,
    crash_rounds: Sequence[int] = (1, 2, 3, 4),
    recover_after: Optional[int] = None,
    drop_rate: float = 0.0,
    duplicate_rate: float = 0.0,
    corrupt_rate: float = 0.0,
    seed: int = 0,
) -> FaultPlan:
    """A seeded plan crashing a random fraction of nodes.

    Each selected node crashes at a round drawn from ``crash_rounds`` and,
    when ``recover_after`` is set, rejoins that many rounds later with
    reset state.  A message adversary is attached when any rate is set.
    """
    rng = random.Random(f"{seed}:crash-plan")
    nodes = sorted(graph.nodes)
    count = round(fraction * len(nodes))
    victims = sorted(rng.sample(nodes, count)) if count else []
    crashes = tuple(
        CrashFault(node, rng.choice(list(crash_rounds)), recover_after)
        for node in victims
    )
    adversary = None
    if drop_rate or duplicate_rate or corrupt_rate:
        adversary = MessageAdversary(
            drop_rate=drop_rate,
            duplicate_rate=duplicate_rate,
            corrupt_rate=corrupt_rate,
        )
    return FaultPlan(crashes=crashes, messages=adversary, seed=seed)


def _predictions_for(source: PredictionSource, seed: int) -> Mapping[int, Any]:
    return source(seed) if callable(source) else source


def degradation_sweep(
    algorithm: DistributedAlgorithm,
    problem: GraphProblem,
    graph: DistGraph,
    predictions: PredictionSource,
    *,
    drop_rates: Sequence[float] = (0.0, 0.01, 0.05, 0.2),
    seeds: Sequence[int] = (0, 1, 2),
    crash_fraction: float = 0.0,
    recover_after: Optional[int] = None,
    max_rounds: Optional[int] = None,
) -> List[DegradationPoint]:
    """Run the fault-rate sweep and measure degradation at every point.

    Every run uses ``on_round_limit="partial"``: a starved run is a data
    point (low coverage, ``stuck=True``), not an error.  Safety is still
    checked at every point via :func:`survivor_violations`.
    """
    points: List[DegradationPoint] = []
    for rate in drop_rates:
        for seed in seeds:
            plan = random_crash_plan(
                graph,
                crash_fraction,
                recover_after=recover_after,
                drop_rate=rate,
                seed=seed,
            )
            result = run(
                algorithm,
                graph,
                _predictions_for(predictions, seed),
                seed=seed,
                max_rounds=max_rounds,
                faults=plan,
                on_round_limit="partial",
            )
            survivors = survivor_nodes(result)
            points.append(
                DegradationPoint(
                    graph=graph.name,
                    drop_rate=rate,
                    crash_fraction=crash_fraction,
                    recovery=recover_after is not None,
                    seed=seed,
                    rounds=result.rounds,
                    rounds_executed=result.rounds_executed,
                    survivors=len(survivors),
                    coverage=survivor_coverage(result),
                    solution_size=(
                        solution_size(result.outputs, "mis")
                        if problem.name == "mis"
                        else len(set(result.outputs) & set(survivors))
                    ),
                    violations=survivor_violations(problem, graph, result),
                    stuck=result.stuck is not None,
                    dropped=result.dropped_messages,
                )
            )
    return points


def degradation_metrics(
    problem: Optional[GraphProblem],
    graph: DistGraph,
    predictions: Optional[Mapping[int, Any]],
    result: Any,
) -> Dict[str, Any]:
    """Per-cell degradation measurements, in sweep-metrics form.

    Top-level so sweep cells can carry it as their ``metrics`` callable
    (see :class:`repro.exec.plan.Cell`); the counters match what
    :func:`degradation_sweep` records per point, letting the E25
    benchmark run on the sweep executor with identical numbers.
    """
    survivors = survivor_nodes(result)
    return {
        "survivors": len(survivors),
        "coverage": survivor_coverage(result),
        "violations": (
            0 if problem is None else len(survivor_violations(problem, graph, result))
        ),
    }


def summarize_points(
    points: Sequence[DegradationPoint],
) -> List[Dict[str, Any]]:
    """Aggregate a sweep per drop rate: the degradation curve.

    Returns one row per rate (in sweep order) with seed-averaged rounds
    and coverage, total violations and the number of starved runs.
    """
    rows: List[Dict[str, Any]] = []
    by_rate: Dict[float, List[DegradationPoint]] = {}
    order: List[float] = []
    for point in points:
        if point.drop_rate not in by_rate:
            order.append(point.drop_rate)
        by_rate.setdefault(point.drop_rate, []).append(point)
    for rate in order:
        group = by_rate[rate]
        rows.append(
            {
                "drop_rate": rate,
                "runs": len(group),
                "mean_rounds_executed": sum(p.rounds_executed for p in group)
                / len(group),
                "mean_coverage": sum(p.coverage for p in group) / len(group),
                "mean_solution_size": sum(p.solution_size for p in group)
                / len(group),
                "violations": sum(len(p.violations) for p in group),
                "stuck_runs": sum(1 for p in group if p.stuck),
                "dropped_messages": sum(p.dropped for p in group),
            }
        )
    return rows
