"""Fault injection and graceful degradation.

The paper's central promise is *robustness*: an algorithm with
predictions must stay correct and bounded even when the prediction is
adversarially bad (Section 1.1, Lemmas 1-2).  This subpackage extends the
same discipline to the execution substrate, so that claim-validation
benchmarks remain trustworthy when something goes wrong mid-run:

* :class:`FaultPlan` — a declarative description of node faults
  (crash-stop, crash-with-recovery), seeded message adversaries
  (drop / duplicate / corrupt, per-edge or global), and
  prediction-corruption adversaries;
* :class:`FaultController` — the object the engine interposes in its
  compose/deliver path; every decision is a pure function of
  ``(seed, round, sender, receiver)``, so faulty runs are exactly as
  reproducible as fault-free ones;
* :mod:`~repro.faults.validators` — safety checks on the partial outputs
  of the *surviving* subgraph after a faulty run;
* :mod:`~repro.faults.harness` — the degradation-sweep harness behind
  ``repro faults`` and ``benchmarks/bench_e25_fault_degradation.py``.
"""

from repro.faults.controller import FaultController, MessageFate
from repro.faults.harness import (
    DegradationPoint,
    degradation_metrics,
    degradation_sweep,
    random_crash_plan,
    summarize_points,
)
from repro.faults.plan import (
    CrashFault,
    FaultPlan,
    MessageAdversary,
    PredictionAdversary,
)
from repro.faults.validators import (
    survivor_coverage,
    survivor_nodes,
    survivor_violations,
)

__all__ = [
    "CrashFault",
    "DegradationPoint",
    "FaultController",
    "FaultPlan",
    "MessageAdversary",
    "MessageFate",
    "PredictionAdversary",
    "degradation_metrics",
    "degradation_sweep",
    "random_crash_plan",
    "summarize_points",
    "survivor_coverage",
    "survivor_nodes",
    "survivor_violations",
]
