"""Error components: what remains after the base algorithm.

Each problem's *base algorithm* (Section 4) is a fixed, simple pruning
algorithm that outputs exactly the predictions that are locally consistent
with a correct solution.  The error components of an instance are the
components of the subgraph induced by the nodes that would still be active
after running it (for edge coloring: the components of the subgraph
induced by the still-uncolored edges).

The functions here are *pure* re-statements of the base algorithms — they
compute the same partial solutions as the message-passing implementations
in :mod:`repro.algorithms` (a property the test suite checks), but without
simulation, so error measures are cheap to evaluate inside sweeps.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, List, Mapping, Tuple

from repro.graphs.graph import DistGraph
from repro.problems.base import Outputs
from repro.problems.matching import UNMATCHED

Predictions = Mapping[int, Any]


# ----------------------------------------------------------------------
# Base partial solutions (one per problem)
# ----------------------------------------------------------------------
def mis_base_partial(graph: DistGraph, predictions: Predictions) -> Outputs:
    """Partial solution of the MIS Base Algorithm (Section 4).

    The nodes predicted 1 whose neighbors are all predicted 0 form an
    independent set ``I``; ``I`` outputs 1 and the neighbors of ``I``
    output 0.
    """
    independent = {
        node
        for node in graph.nodes
        if predictions.get(node) == 1
        and all(predictions.get(other) == 0 for other in graph.neighbors(node))
    }
    outputs: Outputs = {node: 1 for node in independent}
    for node in independent:
        for other in graph.neighbors(node):
            outputs[other] = 0
    return outputs


def matching_base_partial(graph: DistGraph, predictions: Predictions) -> Outputs:
    """Partial solution of the Maximal Matching Base Algorithm (Section 8.1).

    Mutually predicted pairs output their match; a node predicted ⊥ whose
    neighbors are all matched outputs ⊥.
    """
    outputs: Outputs = {}
    for node in graph.nodes:
        partner = predictions.get(node)
        if (
            partner is not None
            and partner != UNMATCHED
            and partner in graph.neighbors(node)
            and predictions.get(partner) == node
        ):
            outputs[node] = partner
    for node in graph.nodes:
        if node in outputs:
            continue
        if predictions.get(node) == UNMATCHED and all(
            other in outputs for other in graph.neighbors(node)
        ):
            outputs[node] = UNMATCHED
    return outputs


def vertex_coloring_base_partial(
    graph: DistGraph, predictions: Predictions
) -> Outputs:
    """Partial solution of the (Δ+1)-Vertex Coloring Base Algorithm.

    A node outputs its predicted color when it is a legal color that
    differs from every neighbor's prediction (Section 8.2).
    """
    palette_size = graph.delta + 1
    outputs: Outputs = {}
    for node in graph.nodes:
        color = predictions.get(node)
        if not isinstance(color, int) or not 1 <= color <= palette_size:
            continue
        if all(predictions.get(other) != color for other in graph.neighbors(node)):
            outputs[node] = color
    return outputs


def edge_coloring_base_partial(
    graph: DistGraph, predictions: Predictions
) -> Outputs:
    """Partial solution of the (2Δ−1)-Edge Coloring Base Algorithm.

    A node proposes its predicted color for an edge when that color is
    legal and not repeated among its own edge predictions; an edge is
    colored when both endpoints propose the same color (Section 8.3).
    Predictions are dicts ``neighbor -> color`` per node.
    """
    palette_size = max(1, 2 * graph.delta - 1)

    def proposals(node: int) -> Dict[int, int]:
        prediction = predictions.get(node) or {}
        if not isinstance(prediction, dict):
            return {}
        counts: Dict[int, int] = {}
        for color in prediction.values():
            if isinstance(color, int):
                counts[color] = counts.get(color, 0) + 1
        return {
            other: color
            for other, color in prediction.items()
            if other in graph.neighbors(node)
            and isinstance(color, int)
            and 1 <= color <= palette_size
            and counts.get(color, 0) == 1
        }

    all_proposals = {node: proposals(node) for node in graph.nodes}
    outputs: Outputs = {node: {} for node in graph.nodes}
    for u, v in graph.edges():
        color_u = all_proposals[u].get(v)
        color_v = all_proposals[v].get(u)
        if color_u is not None and color_u == color_v:
            outputs[u][v] = color_u
            outputs[v][u] = color_u
    return {node: value for node, value in outputs.items() if value}


_BASE_PARTIALS = {
    "mis": mis_base_partial,
    "matching": matching_base_partial,
    "vertex-coloring": vertex_coloring_base_partial,
    "edge-coloring": edge_coloring_base_partial,
}


# ----------------------------------------------------------------------
# Error components
# ----------------------------------------------------------------------
def error_components(
    problem_name: str, graph: DistGraph, predictions: Predictions
) -> List[FrozenSet[int]]:
    """Error components of an instance (Sections 4 and 8).

    For the node problems these are the components induced by nodes that
    produce no output under the base algorithm.  For edge coloring they
    are the components of the subgraph induced by the uncolored edges.
    """
    if problem_name not in _BASE_PARTIALS:
        raise ValueError(f"unknown problem {problem_name!r}")
    if problem_name == "edge-coloring":
        return [nodes for nodes, _ in edge_error_components(graph, predictions)]
    outputs = _BASE_PARTIALS[problem_name](graph, predictions)
    active = [node for node in graph.nodes if node not in outputs]
    return graph.subgraph(active).components()


def edge_error_components(
    graph: DistGraph, predictions: Predictions
) -> List[Tuple[FrozenSet[int], FrozenSet[Tuple[int, int]]]]:
    """Edge-coloring error components with their edge sets.

    Returns ``(node set, edge set)`` per component of the subgraph induced
    by the edges left uncolored by the base algorithm.
    """
    outputs = edge_coloring_base_partial(graph, predictions)

    def colored(u: int, v: int) -> bool:
        return v in (outputs.get(u) or {})

    uncolored = [(u, v) for u, v in graph.edges() if not colored(u, v)]
    adjacency: Dict[int, List[int]] = {}
    for u, v in uncolored:
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    edge_graph = DistGraph(adjacency, d=graph.d) if adjacency else None
    if edge_graph is None:
        return []
    result = []
    for nodes in edge_graph.components():
        edges = frozenset(
            (u, v) for u, v in uncolored if u in nodes and v in nodes
        )
        result.append((nodes, edges))
    return result


def black_white_components(
    graph: DistGraph, predictions: Predictions
) -> Tuple[List[FrozenSet[int]], List[FrozenSet[int]]]:
    """Black and white components for MIS (Sections 5 and 9).

    A black (white) component is a component of the subgraph induced by
    the nodes with prediction 1 (0) that are still active after the MIS
    Base Algorithm.
    """
    outputs = mis_base_partial(graph, predictions)
    active = [node for node in graph.nodes if node not in outputs]
    black = [node for node in active if predictions.get(node) == 1]
    white = [node for node in active if predictions.get(node) != 1]
    return graph.subgraph(black).components(), graph.subgraph(white).components()
