"""Error measures for predictions (Section 5 of the paper).

An error measure η maps a problem instance and predictions to a
non-negative integer.  The paper's recipe: run the problem's *base
algorithm* (a fixed, simple pruning algorithm — part of the problem
definition), take the components induced by the still-active nodes (the
*error components*), apply a monotone measure μ to each, and take the
maximum.  This package computes error components and the measures
μ₁ (component size), μ₂ = 2·min(α, τ), plus the alternative error
measures η_bw (black/white components), η_t (rooted-tree monochromatic
heights) and the global measure η_H (Hamming distance) the paper argues
against.
"""

from repro.errors.components import (
    black_white_components,
    edge_coloring_base_partial,
    error_components,
    matching_base_partial,
    mis_base_partial,
    vertex_coloring_base_partial,
)
from repro.errors.exact import (
    SearchBudgetExceeded,
    max_independent_set_size,
    min_vertex_cover_size,
)
from repro.errors.measures import (
    component_diameters,
    eta1,
    eta2,
    eta_bw,
    eta_hamming,
    eta_t,
    mu1,
    mu2,
    mu2_bounds,
)

__all__ = [
    "SearchBudgetExceeded",
    "black_white_components",
    "component_diameters",
    "edge_coloring_base_partial",
    "error_components",
    "eta1",
    "eta2",
    "eta_bw",
    "eta_hamming",
    "eta_t",
    "matching_base_partial",
    "max_independent_set_size",
    "min_vertex_cover_size",
    "mis_base_partial",
    "mu1",
    "mu2",
    "mu2_bounds",
    "vertex_coloring_base_partial",
]
