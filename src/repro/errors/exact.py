"""Exact maximum-independent-set computation for error components.

The μ₂ measure (Section 5) needs α(S), the maximum independent set size of
an error component, and τ(S) = |S| − α(S), the minimum vertex cover size
(the complement of a maximum independent set is always a minimum vertex
cover).  Components in our experiments are small-to-moderate, so a branch
and bound with standard reductions is exact and fast:

* components are solved independently;
* vertices of degree ≤ 1 are always safely taken into the set;
* subgraphs of maximum degree ≤ 2 (disjoint paths and cycles) are solved
  in closed form;
* otherwise we branch on a maximum-degree vertex: either exclude it, or
  include it and delete its closed neighborhood.

A search budget guards against pathological inputs; exceeding it raises
:class:`SearchBudgetExceeded` rather than silently approximating.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.graphs.graph import DistGraph


class SearchBudgetExceeded(RuntimeError):
    """Raised when exact α computation exceeds its node-expansion budget."""


def _components(adjacency: Dict[int, Set[int]]) -> Iterable[Set[int]]:
    seen: Set[int] = set()
    for start in adjacency:
        if start in seen:
            continue
        stack = [start]
        seen.add(start)
        members = {start}
        while stack:
            node = stack.pop()
            for other in adjacency[node]:
                if other not in seen:
                    seen.add(other)
                    members.add(other)
                    stack.append(other)
        yield members


def _alpha_path_or_cycle(adjacency: Dict[int, Set[int]], nodes: Set[int]) -> int:
    """α of a connected graph with maximum degree ≤ 2 (path or cycle)."""
    size = len(nodes)
    degree_one = [node for node in nodes if len(adjacency[node] & nodes) <= 1]
    if degree_one or size == 1:
        return (size + 1) // 2  # path
    return size // 2  # cycle


class _Searcher:
    def __init__(self, budget: int) -> None:
        self.budget = budget
        self.expansions = 0

    def alpha(self, adjacency: Dict[int, Set[int]], nodes: Set[int]) -> int:
        total = 0
        for component in _components({v: adjacency[v] & nodes for v in nodes}):
            total += self._alpha_connected(adjacency, component)
        return total

    def _alpha_connected(self, adjacency: Dict[int, Set[int]], nodes: Set[int]) -> int:
        self.expansions += 1
        if self.expansions > self.budget:
            raise SearchBudgetExceeded(
                f"α search exceeded {self.budget} expansions"
            )
        nodes = set(nodes)
        taken = 0
        # Reduction: a vertex of degree ≤ 1 belongs to some maximum
        # independent set; take it and delete its closed neighborhood.
        changed = True
        while changed:
            changed = False
            for node in list(nodes):
                if node not in nodes:
                    continue
                neighbors = adjacency[node] & nodes
                if len(neighbors) <= 1:
                    taken += 1
                    nodes.discard(node)
                    nodes -= neighbors
                    changed = True
        if not nodes:
            return taken
        live = {v: adjacency[v] & nodes for v in nodes}
        max_degree = max(len(nbrs) for nbrs in live.values())
        if max_degree <= 2:
            return taken + sum(
                _alpha_path_or_cycle(adjacency, component)
                for component in _components(live)
            )
        pivot = max(nodes, key=lambda v: (len(live[v]), v))
        # Branch 1: include the pivot (delete its closed neighborhood).
        include = self.alpha(adjacency, nodes - {pivot} - adjacency[pivot]) + 1
        # Branch 2: exclude the pivot.
        exclude = self.alpha(adjacency, nodes - {pivot})
        return taken + max(include, exclude)


def max_independent_set_size(
    graph: DistGraph, nodes: Iterable[int] = None, budget: int = 2_000_000
) -> int:
    """α(G) — the exact maximum independent set size.

    Args:
        graph: The instance.
        nodes: Optional node subset (defaults to the whole graph); α is
            computed on the induced subgraph.
        budget: Node-expansion budget for the branch and bound.
    """
    node_set = set(graph.nodes if nodes is None else nodes)
    adjacency = {v: set(graph.neighbors(v)) & node_set for v in node_set}
    return _Searcher(budget).alpha(adjacency, node_set)


def min_vertex_cover_size(
    graph: DistGraph, nodes: Iterable[int] = None, budget: int = 2_000_000
) -> int:
    """τ(G) = |V| − α(G) — the exact minimum vertex cover size."""
    node_set = set(graph.nodes if nodes is None else nodes)
    return len(node_set) - max_independent_set_size(graph, node_set, budget)
