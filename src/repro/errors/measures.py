"""The error measures of Section 5 (and Section 9).

All error measures follow the paper's recipe: a monotone measure μ of a
graph, maximized over the error components of the instance.  Implemented
measures:

* ``μ₁`` — number of nodes; ``η₁ = max μ₁(S)``.
* ``μ₂ = 2·min(α, τ)``; ``η₂ = max μ₂(S)`` (MIS; η₂ ≤ η₁ always).
* ``η_bw`` — size of the largest black or white component (Section 5).
* ``η_t`` — rooted trees: the maximum number of nodes on a monochromatic
  parent-pointer path among active nodes (Section 9.2); η_t ≤ η_bw ≤ η₁.
* ``η_H`` — the global Hamming measure the paper argues *against*
  (minimum number of prediction flips to reach a correct solution);
  exact, exponential, for small instances and comparison plots only.
* component diameters — the non-monotone measure of Figure 1, provided so
  experiments can demonstrate why it is unusable.
"""

from __future__ import annotations

from typing import Any, FrozenSet, Iterable, List, Mapping

from repro.errors.components import (
    black_white_components,
    error_components,
    mis_base_partial,
)
from repro.errors.exact import max_independent_set_size
from repro.graphs.graph import DistGraph
from repro.problems.mis import MIS

Predictions = Mapping[int, Any]


# ----------------------------------------------------------------------
# Measures μ on (sub)graphs
# ----------------------------------------------------------------------
def mu1(graph: DistGraph, nodes: Iterable[int] = None) -> int:
    """μ₁: the number of nodes (monotone)."""
    if nodes is None:
        return graph.n
    return len(set(nodes))


def mu2(graph: DistGraph, nodes: Iterable[int] = None, budget: int = 2_000_000) -> int:
    """μ₂ = 2·min(α, τ) (Section 5; monotone, μ₂ ≤ μ₁).

    α is the maximum independent set size and τ = |S| − α the minimum
    vertex cover size of the (sub)graph.
    """
    node_set = set(graph.nodes if nodes is None else nodes)
    alpha = max_independent_set_size(graph, node_set, budget=budget)
    tau = len(node_set) - alpha
    return 2 * min(alpha, tau)


# ----------------------------------------------------------------------
# Error measures η on instances
# ----------------------------------------------------------------------
def mu2_bounds(
    graph: DistGraph, nodes: Iterable[int] = None
) -> "tuple[int, int]":
    """Polynomial-time lower/upper bounds on μ₂ (for large components).

    Exact μ₂ needs exact α (NP-hard in general); for components beyond
    the branch-and-bound's comfort zone these bounds sandwich it using

    * α ≥ |greedy independent set| (min-degree-first greedy), and
    * α ≤ |S| − |maximal matching| (every matching edge forces a
      vertex-cover member, so τ ≥ matching size).

    Returns ``(low, high)`` with ``low ≤ μ₂ ≤ high``.
    """
    node_set = set(graph.nodes if nodes is None else nodes)
    size = len(node_set)
    if size == 0:
        return 0, 0

    # Greedy independent set, smallest current degree first.
    remaining = set(node_set)
    greedy = 0
    while remaining:
        node = min(
            remaining, key=lambda v: (len(graph.neighbors(v) & remaining), v)
        )
        greedy += 1
        remaining.discard(node)
        remaining -= graph.neighbors(node)

    # Greedy maximal matching within the subset.  CSR rows stream
    # neighbors in ascending id order, so the first unmatched hit is the
    # same partner the sorted-intersection scan used to pick — without
    # materializing the intersection.
    csr = graph.csr
    unmatched = set(node_set)
    matching = 0
    for node in sorted(node_set):
        if node not in unmatched:
            continue
        for other in csr.neighbor_ids(node):
            if other in unmatched and other != node:
                matching += 1
                unmatched.discard(node)
                unmatched.discard(other)
                break

    alpha_low, alpha_high = greedy, size - matching

    def mu2_of(alpha: int) -> int:
        return 2 * min(alpha, size - alpha)

    candidates = [mu2_of(alpha_low), mu2_of(alpha_high)]
    low = min(candidates)
    if alpha_low <= size // 2 <= alpha_high:
        high = 2 * (size // 2)
    else:
        high = max(candidates)
    return low, high


def eta1(
    graph: DistGraph, predictions: Predictions, problem_name: str = "mis"
) -> int:
    """η₁ = max μ₁(S) over the error components (0 when predictions are correct)."""
    components = error_components(problem_name, graph, predictions)
    return max((len(component) for component in components), default=0)


def eta2(
    graph: DistGraph, predictions: Predictions, budget: int = 2_000_000
) -> int:
    """η₂ = max μ₂(S) over the MIS error components."""
    components = error_components("mis", graph, predictions)
    return max(
        (mu2(graph, component, budget=budget) for component in components),
        default=0,
    )


def eta_bw(graph: DistGraph, predictions: Predictions) -> int:
    """η_bw: the number of nodes in the largest black or white component."""
    black, white = black_white_components(graph, predictions)
    return max(
        (len(component) for component in list(black) + list(white)),
        default=0,
    )


def eta_t(graph: DistGraph, predictions: Predictions) -> int:
    """η_t for rooted trees (Section 9.2).

    The maximum number of nodes on a monochromatic path obtained by
    following parent pointers within the subgraph induced by the nodes
    still active after the MIS Base Algorithm — equivalently, 1 plus the
    maximum height of the black and white components.
    """
    outputs = mis_base_partial(graph, predictions)
    active = {node for node in graph.nodes if node not in outputs}

    longest = {node: 0 for node in active}

    def path_length(node: int) -> int:
        if longest[node]:
            return longest[node]
        # Iterative with memo: walk up while the parent is active and has
        # the same prediction.
        chain = []
        current = node
        while True:
            chain.append(current)
            parent = graph.node_attrs(current).get("parent")
            if (
                parent is None
                or parent not in active
                or predictions.get(parent) != predictions.get(current)
            ):
                break
            if longest.get(parent):
                chain.append(parent)
                break
            current = parent
        # The last element of the chain either ends the path or is memoized.
        base = longest.get(chain[-1]) or 1
        longest[chain[-1]] = base
        for index in range(len(chain) - 2, -1, -1):
            longest[chain[index]] = longest[chain[index + 1]] + 1
        return longest[node]

    return max((path_length(node) for node in sorted(active)), default=0)


def eta_hamming(graph: DistGraph, predictions: Predictions) -> int:
    """η_H: minimum prediction flips to reach some maximal independent set.

    This is the global error measure the paper discusses and rejects
    (Section 5): exact computation enumerates all maximal independent
    sets, so call it on small instances only.
    """
    best = None
    for chosen in MIS.all_maximal_independent_sets(graph):
        distance = sum(
            1
            for node in graph.nodes
            if (1 if node in chosen else 0) != (predictions.get(node) or 0)
        )
        if best is None or distance < best:
            best = distance
    return best if best is not None else 0


def component_diameters(
    graph: DistGraph, components: List[FrozenSet[int]]
) -> List[int]:
    """Diameters of induced components — Figure 1's non-monotone measure.

    Provided for the experiments that reproduce the paper's argument that
    the maximum error-component diameter must *not* be used as an error
    measure on general graphs.
    """
    diameters = []
    for component in components:
        subgraph = graph.subgraph(component)
        diameters.append(subgraph.diameter())
    return diameters
