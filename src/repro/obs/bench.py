"""Bench baseline artifacts: ``BENCH_<name>.json`` writing and diffing.

A sweep's telemetry (see ``SweepResult.telemetry()``) is only useful
over time: the question a perf PR has to answer is "did round
throughput regress against the last recorded run?".  This module turns
one executed sweep into a **baseline artifact** — a small JSON document
with the sweep's telemetry and per-cell rounds/messages — and can diff
a fresh run against the previously recorded baseline, acting as a
regression gate for the bench_e22-style numbers in EXPERIMENTS.md.

Baseline schema (``repro.obs.bench/v1``; documented in
``docs/OBSERVABILITY.md``)::

    {
      "schema": "repro.obs.bench/v1",
      "name": "<sweep name>",
      "created": <unix seconds>,
      "telemetry": { ... SweepResult.telemetry() ... },
      "cells": [
        {"label": ..., "seed": ..., "rounds": ..., "rounds_executed": ...,
         "messages": ..., "delayed": ..., "retried": ..., "kernel": ...,
         "valid": ..., "elapsed": ...},
        ...
      ]
    }

The per-cell columns come from the canonical registry
(``repro.exec.results.CELL_COLUMNS``): the compared set is exactly the
registry's ``compare=True`` columns, and a column a *previous* baseline
lacks (recorded by an older version, before that column existed) is
skipped rather than treated as a break — the one place that older-schema
tolerance lives.

The diff separates **determinism breaks** (per-cell rounds or message
counts changed — always a regression, timings are irrelevant) from
**throughput regressions** (node-rounds/s dropped by more than the
gate factor — timing-noise tolerant by construction).
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

SCHEMA = "repro.obs.bench/v1"

#: Default throughput gate: fail when the new run is > 2x slower.
DEFAULT_GATE = 2.0


def baseline_payload(
    result: Any, *, name: Optional[str] = None, created: Optional[float] = None
) -> Dict[str, Any]:
    """The baseline document for one executed sweep.

    ``result`` is a :class:`~repro.exec.results.SweepResult` (duck-typed:
    anything with ``name``, ``rows`` and ``telemetry()``).  Each cell
    document carries the registry's compared columns plus ``label``,
    ``valid`` and ``elapsed`` (identification and timing context).
    """
    from repro.exec.results import CELL_COLUMNS

    compared = [column for column in CELL_COLUMNS if column.compare]
    return {
        "schema": SCHEMA,
        "name": name or result.name or "sweep",
        "created": time.time() if created is None else created,
        "telemetry": result.telemetry(),
        "cells": [
            {
                "label": row.label,
                **{column.name: column.value_of(row) for column in compared},
                "valid": row.valid,
                "elapsed": getattr(row, "elapsed", 0.0),
            }
            for row in result.rows
        ],
    }


def write_baseline(
    path: str, result: Any, *, name: Optional[str] = None
) -> Dict[str, Any]:
    """Serialize ``result`` as a baseline artifact at ``path``."""
    payload = baseline_payload(result, name=name)
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return payload


def load_baseline(path: str) -> Dict[str, Any]:
    """Load a baseline artifact, validating its schema marker."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    schema = payload.get("schema")
    if schema != SCHEMA:
        raise ValueError(f"{path}: unsupported baseline schema {schema!r}")
    return payload


@dataclass
class BaselineDiff:
    """Outcome of comparing a fresh run against a recorded baseline.

    Attributes:
        name: The baseline's name.
        gate: The throughput-regression factor that was applied.
        throughput_ratio: ``baseline node-rounds/s ÷ current`` (> 1 means
            the new run is slower); ``None`` when either side lacks
            timing data.
        determinism_breaks: Per-cell rounds/message mismatches — a
            changed algorithm or broken seeding, never timing noise.
        regressions: Human-readable gate failures (throughput beyond the
            gate, plus every determinism break).
        notes: Non-failing observations (new/missing cells, improvement).
    """

    name: str
    gate: float = DEFAULT_GATE
    throughput_ratio: Optional[float] = None
    determinism_breaks: List[str] = field(default_factory=list)
    regressions: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the run is clean: no regressions of either kind."""
        return not self.regressions

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [f"baseline {self.name!r}: {'clean' if self.ok else 'REGRESSED'}"]
        if self.throughput_ratio is not None:
            lines.append(
                f"  throughput ratio (baseline/current): "
                f"{self.throughput_ratio:.2f} (gate {self.gate:.1f}x)"
            )
        for entry in self.regressions:
            lines.append(f"  ! {entry}")
        for entry in self.notes:
            lines.append(f"  - {entry}")
        return "\n".join(lines)


def diff_payloads(
    current: Dict[str, Any],
    previous: Dict[str, Any],
    *,
    gate: float = DEFAULT_GATE,
) -> BaselineDiff:
    """Compare a fresh baseline payload against the previous one."""
    from repro.exec.results import COMPARE_COLUMNS

    diff = BaselineDiff(name=previous.get("name", "baseline"), gate=gate)

    previous_cells = {cell["label"]: cell for cell in previous.get("cells", [])}
    current_cells = {cell["label"]: cell for cell in current.get("cells", [])}
    for label, cell in current_cells.items():
        old = previous_cells.get(label)
        if old is None:
            diff.notes.append(f"new cell {label!r} (not in baseline)")
            continue
        for column in COMPARE_COLUMNS:
            if column not in old:
                # Baselines recorded by an older version lack newer
                # columns (e.g. "delayed", "retried", "kernel");
                # absence is not a break.
                continue
            if cell.get(column) != old.get(column):
                diff.determinism_breaks.append(
                    f"cell {label!r}: {column} {old.get(column)} -> {cell.get(column)}"
                )
    for label in previous_cells:
        if label not in current_cells:
            diff.notes.append(f"cell {label!r} disappeared from the sweep")

    old_rate = previous.get("telemetry", {}).get("node_rounds_per_sec") or 0.0
    new_rate = current.get("telemetry", {}).get("node_rounds_per_sec") or 0.0
    if old_rate > 0 and new_rate > 0:
        diff.throughput_ratio = old_rate / new_rate
        if diff.throughput_ratio > gate:
            diff.regressions.append(
                f"round throughput regressed {diff.throughput_ratio:.2f}x "
                f"({old_rate:.0f} -> {new_rate:.0f} node-rounds/s, gate {gate:.1f}x)"
            )
        elif diff.throughput_ratio < 1 / gate:
            diff.notes.append(
                f"round throughput improved {1 / diff.throughput_ratio:.2f}x"
            )
    diff.regressions.extend(diff.determinism_breaks)
    return diff


def record_run(
    path: str,
    result: Any,
    *,
    name: Optional[str] = None,
    gate: float = DEFAULT_GATE,
) -> Tuple[Dict[str, Any], Optional[BaselineDiff]]:
    """Diff ``result`` against the baseline at ``path``, then replace it.

    Returns ``(new payload, diff)``; the diff is ``None`` on the first
    run (no baseline existed yet).  The new baseline is written even
    when the diff regressed — the artifact records what happened, the
    caller decides what to do about it (e.g. a CI gate on ``diff.ok``).
    """
    previous: Optional[Dict[str, Any]] = None
    if os.path.exists(path):
        previous = load_baseline(path)
    payload = write_baseline(path, result, name=name)
    if previous is None:
        return payload, None
    return payload, diff_payloads(payload, previous, gate=gate)
