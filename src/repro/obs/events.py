"""Structured event sinks: where a run's observable events go.

The engine has always been able to narrate what happens — sends, drops,
outputs, terminations — but until this module the only listener was the
in-memory :class:`~repro.simulator.trace.TraceRecorder`.  An
:class:`EventSink` generalizes that contract: any object implementing
``record`` (and, optionally, the run/round lifecycle hooks) can be
attached to a run via ``run(..., sinks=[...])`` and receives every event
the recorder would, plus round boundaries with wall-clock and message
deltas.  ``TraceRecorder`` itself is now just one sink implementation.

Two concrete sinks live here:

* :class:`MemoryEventSink` collects plain event dicts in a list — the
  form sweeps ship across process boundaries and tests assert on.
* :class:`JsonlEventSink` appends one JSON object per line to a file,
  the machine-readable export behind ``repro events`` and
  ``repro sweep --events-out``.

The module deliberately imports nothing from the simulator so that the
simulator can make :class:`~repro.simulator.trace.TraceRecorder` a sink
without an import cycle.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, TextIO, Union


class EventSink:
    """Receiver of structured run events.

    Subclass and override what you need; every hook is a no-op by
    default, so a sink interested only in message events (like
    :class:`~repro.simulator.trace.TraceRecorder`) implements just
    :meth:`record`.

    Hook order for one run::

        on_run_begin(meta)
        # per executed round:
        on_round_begin(round_index, active)
        record(round_index, kind, node, data)   # 0+ times
        on_round_end(round_index, info)
        on_run_end(summary)

    ``record`` kinds are those of
    :class:`~repro.simulator.trace.TraceEvent`: ``send``, ``output``,
    ``terminate``, ``crash``, ``recover``, ``drop``, ``corrupt``,
    ``duplicate`` — plus, under ``schedule="async"`` only, ``delay``
    (a message parked in flight), ``deliver`` (a delayed message
    landing), ``retry`` (a send-timeout retransmission) and
    ``stabilize`` (a self-stabilization pulse; ``node`` is ``-1``).
    Round 0 events (setup-phase outputs/terminations) arrive before the
    first ``on_round_begin``.
    """

    def on_run_begin(self, meta: Mapping[str, Any]) -> None:
        """Called once before the setup phase with run metadata."""

    def record(self, round_index: int, kind: str, node: int, data: Any = None) -> None:
        """Called for every observable event (the TraceRecorder API)."""

    def on_round_begin(self, round_index: int, active: int) -> None:
        """Called before a round executes with the live-node count."""

    def on_round_end(self, round_index: int, info: Mapping[str, Any]) -> None:
        """Called after a round with ``elapsed``/``messages``/``active``."""

    def on_run_end(self, summary: Mapping[str, Any]) -> None:
        """Called once after the run with the result summary."""


def event_dict(round_index: int, kind: str, node: int, data: Any = None) -> Dict[str, Any]:
    """The canonical dict form of one event (shared by both sinks)."""
    event: Dict[str, Any] = {"round": round_index, "kind": kind, "node": node}
    if data is not None:
        event["data"] = data
    return event


#: Lifecycle entry kinds (everything else is a TraceEvent kind).
LIFECYCLE_KINDS = frozenset({"run_begin", "round_begin", "round_end", "run_end"})


class MemoryEventSink(EventSink):
    """Collects every event and lifecycle hook as a plain dict.

    ``entries`` holds *everything* — message/output events
    (:func:`event_dict` form) interleaved with ``run_begin`` /
    ``round_begin`` / ``round_end`` / ``run_end`` entries — in arrival
    order; :attr:`events` is the message-event subset.  Dicts rather
    than dataclasses: they are pickled across sweep worker boundaries
    and serialized to JSONL verbatim.
    """

    def __init__(self) -> None:
        self.entries: List[Dict[str, Any]] = []

    @property
    def events(self) -> List[Dict[str, Any]]:
        """The message/output events only (the TraceRecorder stream)."""
        return [
            entry for entry in self.entries if entry["kind"] not in LIFECYCLE_KINDS
        ]

    @property
    def lifecycle(self) -> List[Dict[str, Any]]:
        """The run/round lifecycle entries only."""
        return [entry for entry in self.entries if entry["kind"] in LIFECYCLE_KINDS]

    def on_run_begin(self, meta: Mapping[str, Any]) -> None:
        self.entries.append({"kind": "run_begin", **dict(meta)})

    def record(self, round_index: int, kind: str, node: int, data: Any = None) -> None:
        self.entries.append(event_dict(round_index, kind, node, data))

    def on_round_begin(self, round_index: int, active: int) -> None:
        self.entries.append(
            {"kind": "round_begin", "round": round_index, "active": active}
        )

    def on_round_end(self, round_index: int, info: Mapping[str, Any]) -> None:
        self.entries.append({"kind": "round_end", "round": round_index, **dict(info)})

    def on_run_end(self, summary: Mapping[str, Any]) -> None:
        self.entries.append({"kind": "run_end", **dict(summary)})


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of event payloads to JSON-safe values."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, Mapping):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(item) for item in value]
    return repr(value)


class JsonlEventSink(EventSink):
    """Writes every event and lifecycle hook as one JSON object per line.

    Args:
        target: A path (opened for writing, truncating) or an open
            text-mode file object (left open on :meth:`close`).

    Every line carries a ``kind`` — lifecycle kinds are ``run_begin``,
    ``round_begin``, ``round_end`` and ``run_end``; everything else is a
    :class:`~repro.simulator.trace.TraceEvent` kind with ``round``,
    ``node`` and optional ``data``.  Payloads that are not JSON-safe are
    ``repr``-ized rather than dropped.  Use as a context manager or call
    :meth:`close` to flush.
    """

    def __init__(self, target: Union[str, TextIO]) -> None:
        if isinstance(target, str):
            self._handle: TextIO = open(target, "w", encoding="utf-8")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self.lines_written = 0

    # ------------------------------------------------------------------
    def _write(self, entry: Dict[str, Any]) -> None:
        json.dump(_jsonable(entry), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self.lines_written += 1

    def on_run_begin(self, meta: Mapping[str, Any]) -> None:
        self._write({"kind": "run_begin", **dict(meta)})

    def record(self, round_index: int, kind: str, node: int, data: Any = None) -> None:
        self._write(event_dict(round_index, kind, node, data))

    def on_round_begin(self, round_index: int, active: int) -> None:
        self._write({"kind": "round_begin", "round": round_index, "active": active})

    def on_round_end(self, round_index: int, info: Mapping[str, Any]) -> None:
        self._write({"kind": "round_end", "round": round_index, **dict(info)})

    def on_run_end(self, summary: Mapping[str, Any]) -> None:
        self._write({"kind": "run_end", **dict(summary)})

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush and (for path targets) close the underlying file."""
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "JsonlEventSink":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def async_telemetry(entries: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Summarize the asynchronous-model events of one run.

    Takes any event-dict stream (``MemoryEventSink.entries`` / ``.events``
    or a loaded JSONL export) and digests the ``schedule="async"`` kinds
    into a small report::

        {
            "delayed": <count of delay events>,
            "delivered_late": <count of deliver events>,
            "retries": <count of retry events>,
            "pulses": <count of stabilize events>,
            "delay_histogram": {delay_ticks: count, ...},
            "max_delay": <largest assigned delay, 0 if none>,
            "max_retry_attempt": <largest retry attempt, 0 if none>,
        }

    On a synchronous run (or an async run at ``phi=0`` with no timeout)
    every field is zero/empty — the async kinds are never emitted there.
    """
    histogram: Dict[int, int] = {}
    delivered_late = retries = pulses = max_attempt = 0
    for entry in entries:
        kind = entry.get("kind")
        if kind == "delay":
            delay = int(entry.get("data", {}).get("delay", 0))
            histogram[delay] = histogram.get(delay, 0) + 1
        elif kind == "deliver":
            delivered_late += 1
        elif kind == "retry":
            retries += 1
            attempt = int(entry.get("data", {}).get("attempt", 0))
            max_attempt = max(max_attempt, attempt)
        elif kind == "stabilize":
            pulses += 1
    return {
        "delayed": sum(histogram.values()),
        "delivered_late": delivered_late,
        "retries": retries,
        "pulses": pulses,
        "delay_histogram": dict(sorted(histogram.items())),
        "max_delay": max(histogram) if histogram else 0,
        "max_retry_attempt": max_attempt,
    }


def read_jsonl_events(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL event file back into a list of dicts (blank-safe)."""
    entries: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                entries.append(json.loads(line))
    return entries


def write_jsonl_events(
    path: str, entries: List[Dict[str, Any]], *, cell: Optional[str] = None
) -> int:
    """Append event dicts to a JSONL file, optionally tagging each with
    the sweep cell label that produced it; returns the line count."""
    with open(path, "a", encoding="utf-8") as handle:
        for entry in entries:
            if cell is not None:
                entry = {"cell": cell, **entry}
            json.dump(_jsonable(entry), handle, separators=(",", ":"))
            handle.write("\n")
    return len(entries)
