"""Round-level profiling: where a run's wall-clock and messages go.

The paper's performance measure is rounds (Section 1), but the harness
around the paper — engine fast mode, process-pool sweeps, artifact
caching — is wall-clock-sensitive, and a round count alone cannot say
*which phase* of the synchronous schedule dominates.  A
:class:`RoundProfile` attached to a run (``run(..., profile=True)``,
surfaced as ``result.profile``) records, per executed round, the
compose / deliver / process / finalize phase timings together with the
message and live-node counts, and aggregates them into totals and
histograms.

Profiling uses a separate engine round path that splits the fused
compose-and-deliver loop so the phases can be timed independently; the
split is observationally identical (same outputs, rounds, message
counts, event order) and is never taken when profiling is off, so the
unprofiled hot loop pays nothing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

#: Phase names in schedule order (also the column order of tables).
#: ``kernel`` is the whole-frontier phase of ``schedule="vectorized"``
#: rounds, which have no interpreted compose/deliver/process/finalize
#: split; interpreted rounds record it as zero.
PHASES: Tuple[str, ...] = (
    "compose",
    "deliver",
    "process",
    "finalize",
    "kernel",
)


@dataclass(frozen=True)
class RoundSample:
    """Timings and counters of one executed round.

    Attributes:
        round: The round index (1-based; setup is not a sample).
        compose: Seconds spent composing outboxes.
        deliver: Seconds spent adjudicating faults, accounting bandwidth
            and filling inboxes (includes adversarial replays).
        process: Seconds spent in the programs' ``process`` phase.
        finalize: Seconds spent applying terminations/crashes and
            publishing neighbor outputs.
        kernel: Seconds spent in the whole-frontier compiled kernel
            (``schedule="vectorized"`` rounds only; zero elsewhere).
        messages: Messages delivered this round.
        active: Nodes that were live (not terminated/crashed) this round.
        scheduled: Nodes the scheduler actually ran this round.  Equal to
            ``active`` under the eager schedule; under
            ``schedule="quiescent"`` it is the wake-set size (plus nodes
            pulled in by same-round deliveries), and the gap between the
            two columns is exactly the work quiescence saved.  Defaults
            to ``active`` for samples recorded by eager paths.
    """

    round: int
    compose: float
    deliver: float
    process: float
    finalize: float
    messages: int
    active: int
    scheduled: int = -1
    kernel: float = 0.0

    def __post_init__(self) -> None:
        if self.scheduled < 0:
            object.__setattr__(self, "scheduled", self.active)

    @property
    def elapsed(self) -> float:
        """Total wall-clock of the round (sum of all phases)."""
        return sum(getattr(self, phase) for phase in PHASES)


@dataclass
class RoundProfile:
    """Per-round phase timings of one run, with aggregation helpers.

    Filled by the engine's profiled round path; read via ``result.
    profile``.  ``setup`` is the seconds spent in the setup phase
    (round 0), which has no per-phase breakdown.
    """

    samples: List[RoundSample] = field(default_factory=list)
    setup: float = 0.0

    # ------------------------------------------------------------------
    # Recording (engine-facing)
    # ------------------------------------------------------------------
    def add_round(
        self,
        round_index: int,
        *,
        compose: float,
        deliver: float,
        process: float,
        finalize: float,
        messages: int,
        active: int,
        scheduled: int = -1,
        kernel: float = 0.0,
    ) -> None:
        """Append one round's sample (called by the engine).

        ``scheduled`` defaults to ``active`` (the eager schedule runs
        every live node); the quiescent profiled path passes the wake-set
        size instead, and the vectorized path passes the count of nodes
        that observably acted together with the round's ``kernel`` time.
        """
        self.samples.append(
            RoundSample(
                round=round_index,
                compose=compose,
                deliver=deliver,
                process=process,
                finalize=finalize,
                messages=messages,
                active=active,
                scheduled=scheduled,
                kernel=kernel,
            )
        )

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.samples)

    @property
    def elapsed(self) -> float:
        """Total profiled wall-clock (setup + every round)."""
        return self.setup + sum(sample.elapsed for sample in self.samples)

    def phase_totals(self) -> Dict[str, float]:
        """Seconds per phase summed over all rounds."""
        return {
            phase: sum(getattr(sample, phase) for sample in self.samples)
            for phase in PHASES
        }

    def message_counts(self) -> List[int]:
        """Messages delivered per round, in round order."""
        return [sample.messages for sample in self.samples]

    def round_times(self) -> List[float]:
        """Wall-clock per round, in round order."""
        return [sample.elapsed for sample in self.samples]

    def timing_histogram(self, bins: int = 8) -> List[Tuple[float, float, int]]:
        """Histogram of per-round wall-clock: ``(lo, hi, count)`` rows."""
        return _histogram(self.round_times(), bins)

    def message_histogram(self, bins: int = 8) -> List[Tuple[float, float, int]]:
        """Histogram of per-round message counts: ``(lo, hi, count)``."""
        return _histogram([float(count) for count in self.message_counts()], bins)

    def summary(self) -> Dict[str, Any]:
        """Flat, JSON-safe aggregate: totals, per-phase seconds and
        shares, peak round cost — the form sweeps ship per cell."""
        totals = self.phase_totals()
        elapsed = self.elapsed
        round_total = sum(totals.values())
        node_rounds = sum(sample.active for sample in self.samples)
        scheduled_rounds = sum(sample.scheduled for sample in self.samples)
        return {
            "rounds": len(self.samples),
            "elapsed": elapsed,
            "setup": self.setup,
            "messages": sum(self.message_counts()),
            "node_rounds": node_rounds,
            "scheduled_rounds": scheduled_rounds,
            "scheduled_share": (
                scheduled_rounds / node_rounds if node_rounds else 0.0
            ),
            **{f"{phase}_s": totals[phase] for phase in PHASES},
            **{
                f"{phase}_share": (totals[phase] / round_total if round_total else 0.0)
                for phase in PHASES
            },
            "max_round_s": max(self.round_times(), default=0.0),
            "max_round_messages": max(self.message_counts(), default=0),
        }

    def table(self) -> str:
        """Human-readable per-round table (the ``repro profile`` output)."""
        header = (
            f"{'round':>5}  {'active':>6}  {'sched':>6}  {'msgs':>6}  "
            + "  ".join(f"{phase + ' ms':>11}" for phase in PHASES)
            + f"  {'total ms':>9}"
        )
        lines = [header]
        for sample in self.samples:
            cells = "  ".join(
                f"{getattr(sample, phase) * 1e3:>11.3f}" for phase in PHASES
            )
            lines.append(
                f"{sample.round:>5}  {sample.active:>6}  {sample.scheduled:>6}  "
                f"{sample.messages:>6}  "
                f"{cells}  {sample.elapsed * 1e3:>9.3f}"
            )
        totals = self.phase_totals()
        total_cells = "  ".join(f"{totals[phase] * 1e3:>11.3f}" for phase in PHASES)
        lines.append(
            f"{'total':>5}  {'':>6}  {'':>6}  {sum(self.message_counts()):>6}  "
            f"{total_cells}  {sum(totals.values()) * 1e3:>9.3f}"
        )
        return "\n".join(lines)


def _histogram(
    values: Sequence[float], bins: int
) -> List[Tuple[float, float, int]]:
    """Equal-width histogram over ``values`` (empty input → no rows)."""
    if not values or bins <= 0:
        return []
    lo, hi = min(values), max(values)
    if lo == hi:
        return [(lo, hi, len(values))]
    width = (hi - lo) / bins
    counts = [0] * bins
    for value in values:
        index = min(int((value - lo) / width), bins - 1)
        counts[index] += 1
    return [
        (lo + index * width, lo + (index + 1) * width, counts[index])
        for index in range(bins)
    ]
