"""Observability: structured events, round profiling, bench baselines.

The paper's only performance measure is the number of rounds until all
processes terminate (Section 1); everything else this repository
measures — wall-clock of the engine's phases, sweep throughput, cache
effectiveness — lives here, behind three small surfaces:

* **Event sinks** (:mod:`repro.obs.events`): an :class:`EventSink`
  attached via ``run(..., sinks=[...])`` receives every send / drop /
  output / termination plus round boundaries with wall-clock and
  message deltas.  :class:`JsonlEventSink` exports them as JSONL
  (``repro events``, ``repro sweep --events-out``);
  :class:`MemoryEventSink` collects them in memory.  The simulator's
  ``TraceRecorder`` is one sink implementation.
* **Round profiling** (:mod:`repro.obs.profile`): ``run(...,
  profile=True)`` attaches a :class:`RoundProfile` to the result with
  per-round compose / deliver / process / finalize timings and
  message-count histograms.  When profiling and sinks are off, the
  engine's hot loop does no observability work at all.
* **Bench baselines** (:mod:`repro.obs.bench`): ``record_run`` writes a
  sweep's telemetry as a ``BENCH_<name>.json`` artifact and diffs it
  against the previous baseline — the regression gate behind
  ``repro sweep --bench-out``.
"""

from repro.obs.bench import (
    DEFAULT_GATE,
    SCHEMA,
    BaselineDiff,
    baseline_payload,
    diff_payloads,
    load_baseline,
    record_run,
    write_baseline,
)
from repro.obs.events import (
    LIFECYCLE_KINDS,
    EventSink,
    JsonlEventSink,
    MemoryEventSink,
    async_telemetry,
    event_dict,
    read_jsonl_events,
    write_jsonl_events,
)
from repro.obs.profile import PHASES, RoundProfile, RoundSample

__all__ = [
    "DEFAULT_GATE",
    "PHASES",
    "SCHEMA",
    "BaselineDiff",
    "EventSink",
    "JsonlEventSink",
    "LIFECYCLE_KINDS",
    "MemoryEventSink",
    "RoundProfile",
    "RoundSample",
    "async_telemetry",
    "baseline_payload",
    "diff_payloads",
    "event_dict",
    "load_baseline",
    "read_jsonl_events",
    "record_run",
    "write_baseline",
    "write_jsonl_events",
]
