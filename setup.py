"""Setup shim for environments without the ``wheel`` package.

All real metadata lives in ``pyproject.toml``; this file only enables
``pip install -e . --no-build-isolation`` (legacy editable installs) on
offline machines where PEP-517 editable builds cannot fetch ``wheel``.
"""

from setuptools import setup

setup()
