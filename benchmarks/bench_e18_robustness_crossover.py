"""E18 — The robustness crossover (Sections 1.2 and 7, synthesized).

The defining picture of algorithms with predictions: rounds as a function
of prediction error, with the robust algorithm flattening at its
reference cap while the prediction-only algorithm keeps degrading.

Workload: sorted-id line (Greedy's Θ(n) worst case) with a growing
corrupted segment.  Claims checked:

* Simple = η₁ + 3 exactly on this family (tight degradation);
* Parallel = min{η₁ + O(1), cap} where cap depends only on Δ and d;
* the crossover sits where η₁ ≈ cap.
"""

from repro.algorithms.mis import ColoringMISReference
from repro.bench import Table
from repro.bench.algorithms import mis_parallel, mis_simple
from repro.core import run
from repro.errors import eta1
from repro.graphs import line, sorted_path_ids
from repro.predictions import perfect_predictions
from repro.problems import MIS


def corrupted(base, segment):
    predictions = dict(base)
    for node in range(1, segment + 1):
        predictions[node] = 0
    return predictions


def test_e18_crossover(once):
    def experiment():
        n = 96
        graph = sorted_path_ids(line(n))
        base = perfect_predictions(MIS, graph, seed=1)
        reference = ColoringMISReference()
        cap = (
            3
            + reference.part1_bound(n, graph.delta, graph.d)
            + 2
            + reference.part2_bound(n, graph.delta, graph.d)
        )
        simple = mis_simple()
        parallel = mis_parallel()
        table = Table(
            "E18: robustness crossover on the sorted-id line (n=96)",
            ["corrupt L", "eta1", "simple rounds", "parallel rounds", "cap"],
        )
        rows = []
        for segment in (0, 8, 16, 32, 48, 64, 96):
            predictions = corrupted(base, segment)
            error = eta1(graph, predictions)
            simple_rounds = run(simple, graph, predictions).rounds
            parallel_rounds = run(parallel, graph, predictions).rounds
            table.add_row(segment, error, simple_rounds, parallel_rounds, cap)
            rows.append((error, simple_rounds, parallel_rounds))
        return table, (rows, cap)

    table, (rows, cap) = once(experiment)
    table.print()
    for error, simple_rounds, parallel_rounds in rows:
        # Simple: linear degradation, never better than consistency.
        assert simple_rounds <= error + 3
        # Parallel: min of the degradation curve and the cap.
        assert parallel_rounds <= min(error + 5, cap)
    # At full corruption the robust algorithm beats the simple one
    # decisively (the whole point of robustness).
    full_error = rows[-1]
    assert full_error[2] < full_error[1] / 2
