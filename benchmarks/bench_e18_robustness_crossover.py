"""E18 — The robustness crossover (Sections 1.2 and 7, synthesized).

The defining picture of algorithms with predictions: rounds as a function
of prediction error, with the robust algorithm flattening at its
reference cap while the prediction-only algorithm keeps degrading.

Workload: sorted-id line (Greedy's Θ(n) worst case) with a growing
corrupted segment, executed as one :class:`repro.exec.Sweep` (the cells
share the graph and differ only in their prediction spec, so the sweep's
artifact cache builds the line once).  Claims checked:

* Simple = η₁ + 3 exactly on this family (tight degradation);
* Parallel = min{η₁ + O(1), cap} where cap depends only on Δ and d;
* the crossover sits where η₁ ≈ cap;
* the sweep executor reproduces the pre-executor per-run numbers
  seed-for-seed (the measured curve is pinned exactly).
"""

from repro.algorithms.mis import ColoringMISReference
from repro.bench import Table
from repro.bench.workloads import corrupted_segment_mis, sorted_line
from repro.core import RunConfig
from repro.exec import GraphSpec, PredictionSpec, Sweep

SEGMENTS = (0, 8, 16, 32, 48, 64, 96)

#: The curve measured by the pre-executor, run()-per-point version of
#: this benchmark: (eta1, simple rounds, parallel rounds) per segment.
#: The port must reproduce it exactly — same seeds, same rounds.
EXPECTED_CURVE = {
    0: (0, 3, 3),
    8: (8, 11, 11),
    16: (15, 18, 18),
    32: (31, 34, 32),
    48: (47, 50, 32),
    64: (63, 66, 32),
    96: (96, 99, 32),
}


def test_e18_crossover(once):
    def experiment():
        n = 96
        graph = sorted_line(n)
        reference = ColoringMISReference()
        cap = (
            3
            + reference.part1_bound(n, graph.delta, graph.d)
            + 2
            + reference.part2_bound(n, graph.delta, graph.d)
        )
        sweep = Sweep(name="e18-crossover")
        graph_spec = GraphSpec.of(sorted_line, n)
        for segment in SEGMENTS:
            predictions = PredictionSpec.of(corrupted_segment_mis, segment)
            for algo in ("mis_simple", "mis_parallel"):
                sweep.add(
                    f"L={segment}/{algo}",
                    graph_spec,
                    algo,
                    predictions=predictions,
                    problem="mis",
                    seed=0,
                    config=RunConfig(),
                )
        result = sweep.run("serial")
        rows = result.by_label()
        table = Table(
            "E18: robustness crossover on the sorted-id line (n=96)",
            ["corrupt L", "eta1", "simple rounds", "parallel rounds", "cap"],
        )
        curve = []
        for segment in SEGMENTS:
            simple_row = rows[f"L={segment}/mis_simple"]
            parallel_row = rows[f"L={segment}/mis_parallel"]
            assert simple_row.error == parallel_row.error
            table.add_row(
                segment, simple_row.error, simple_row.rounds,
                parallel_row.rounds, cap,
            )
            curve.append(
                (segment, simple_row.error, simple_row.rounds, parallel_row.rounds)
            )
        assert result.all_valid
        return table, (curve, cap)

    table, (curve, cap) = once(experiment)
    table.print()
    for segment, error, simple_rounds, parallel_rounds in curve:
        # Seed-for-seed identical to the pre-executor benchmark.
        assert (error, simple_rounds, parallel_rounds) == EXPECTED_CURVE[segment]
        # Simple: linear degradation, never better than consistency.
        assert simple_rounds <= error + 3
        # Parallel: min of the degradation curve and the cap.
        assert parallel_rounds <= min(error + 5, cap)
    # At full corruption the robust algorithm beats the simple one
    # decisively (the whole point of robustness).
    _, _, full_simple, full_parallel = curve[-1]
    assert full_parallel < full_simple / 2
