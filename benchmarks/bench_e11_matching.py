"""E11 — Maximal Matching with predictions (Section 8.1).

Paper claims: the base/initialization algorithms are consistent
(2 rounds); the measure-uniform algorithm finishes a component of
``s ≥ 2`` nodes within ``3⌊s/2⌋`` rounds (+O(1) bootstrap); the
Consecutive composition is 2η₁-degrading and robust.
"""

from repro.algorithms.matching import GreedyMatchingAlgorithm
from repro.bench import Table, standard_graph_suite
from repro.bench.algorithms import matching_consecutive, matching_simple
from repro.core import run
from repro.core.analysis import sweep
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import MATCHING


def test_e11_measure_uniform_bound(once):
    def experiment():
        table = Table(
            "E11: greedy matching rounds vs 3*floor(s/2)+3",
            ["graph", "rounds", "bound", "valid"],
        )
        failures = []
        for graph in standard_graph_suite():
            result = run(GreedyMatchingAlgorithm(), graph)
            biggest = max((len(c) for c in graph.components()), default=1)
            bound = 3 * (biggest // 2) + 3
            valid = MATCHING.is_solution(graph, result.outputs)
            table.add_row(graph.name, result.rounds, bound, valid)
            if result.rounds > bound or not valid:
                failures.append(graph.name)
        return table, failures

    table, failures = once(experiment)
    table.print()
    assert not failures


def test_e11_noise_sweep(once):
    def experiment():
        graph = connected_erdos_renyi(50, 0.06, seed=8)
        simple = matching_simple()
        consecutive = matching_consecutive()

        def instances():
            for rate in (0.0, 0.1, 0.3, 0.6, 1.0):
                for seed in (0, 1):
                    yield (
                        f"p={rate}/s={seed}",
                        graph,
                        noisy_predictions(MATCHING, graph, rate, seed=seed),
                    )

        measure = lambda g, p: eta1(g, p, "matching")
        simple_result = sweep(simple, MATCHING, instances(), measure)
        consecutive_result = sweep(consecutive, MATCHING, instances(), measure)
        perfect = perfect_predictions(MATCHING, graph, seed=1)
        consistency = run(simple, graph, perfect).rounds

        table = Table(
            "E11: matching templates rounds vs eta1 (ER n=50)",
            ["eta1", "simple rounds", "consecutive rounds"],
        )
        simple_series = dict(simple_result.rounds_by_error())
        consecutive_series = dict(consecutive_result.rounds_by_error())
        for error in sorted(set(simple_series) | set(consecutive_series)):
            table.add_row(
                error,
                simple_series.get(error, "-"),
                consecutive_series.get(error, "-"),
            )
        return table, (consistency, simple_result, consecutive_result)

    table, (consistency, simple_result, consecutive_result) = once(experiment)
    table.print()
    assert consistency <= 2
    assert simple_result.all_valid and consecutive_result.all_valid
    # Simple: f(eta)-degrading with f(s) = 3*floor(s/2)+3 (measure-uniform bound).
    assert not simple_result.violations(lambda p: 3 * (p.error // 2) + 3 + 2)
    # Consecutive: 2f(eta)-degrading plus template slack.
    assert not consecutive_result.violations(
        lambda p: 2 * (3 * (p.error // 2) + 3) + 2 + 4
    )
