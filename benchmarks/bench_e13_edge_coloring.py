"""E13 — (2Δ−1)-Edge Coloring with predictions (Section 8.3).

Paper claims: the base algorithm is consistent (1 round on correct
predictions, 2 otherwise); the measure-uniform 2-hop-dominance algorithm
finishes a component of ``s ≥ 2`` nodes within ``2s + O(1)`` rounds
(the paper's 2s−3 plus our bootstrap refresh; optimal by Lemma 14).
"""

from repro.algorithms.edge_coloring import GreedyEdgeColoringAlgorithm
from repro.bench import Table, standard_graph_suite
from repro.bench.algorithms import edge_coloring_consecutive, edge_coloring_simple
from repro.core import run
from repro.core.analysis import sweep
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import EDGE_COLORING


def test_e13_measure_uniform_bound(once):
    def experiment():
        table = Table(
            "E13: greedy edge coloring rounds vs 2s+3",
            ["graph", "rounds", "bound", "valid"],
        )
        failures = []
        for graph in standard_graph_suite():
            result = run(GreedyEdgeColoringAlgorithm(), graph)
            biggest = max((len(c) for c in graph.components()), default=1)
            bound = 2 * biggest + 3
            valid = EDGE_COLORING.is_solution(graph, result.outputs)
            table.add_row(graph.name, result.rounds, bound, valid)
            if result.rounds > bound or not valid:
                failures.append(graph.name)
        return table, failures

    table, failures = once(experiment)
    table.print()
    assert not failures


def test_e13_noise_sweep(once):
    def experiment():
        graph = connected_erdos_renyi(36, 0.08, seed=10)
        simple = edge_coloring_simple()
        consecutive = edge_coloring_consecutive()

        def instances():
            for rate in (0.0, 0.2, 0.5, 1.0):
                for seed in (0, 1):
                    yield (
                        f"p={rate}/s={seed}",
                        graph,
                        noisy_predictions(EDGE_COLORING, graph, rate, seed=seed),
                    )

        measure = lambda g, p: eta1(g, p, "edge-coloring")
        simple_result = sweep(simple, EDGE_COLORING, instances(), measure)
        consecutive_result = sweep(
            consecutive, EDGE_COLORING, instances(), measure
        )
        perfect = perfect_predictions(EDGE_COLORING, graph, seed=1)
        consistency = run(simple, graph, perfect).rounds

        table = Table(
            "E13: edge-coloring templates rounds vs eta1 (ER n=36)",
            ["eta1", "simple rounds", "consecutive rounds"],
        )
        simple_series = dict(simple_result.rounds_by_error())
        consecutive_series = dict(consecutive_result.rounds_by_error())
        for error in sorted(set(simple_series) | set(consecutive_series)):
            table.add_row(
                error,
                simple_series.get(error, "-"),
                consecutive_series.get(error, "-"),
            )
        return table, (consistency, simple_result, consecutive_result)

    table, (consistency, simple_result, consecutive_result) = once(experiment)
    table.print()
    assert consistency <= 1
    assert simple_result.all_valid and consecutive_result.all_valid
    assert not simple_result.violations(lambda p: 2 * p.error + 3 + 2)
    assert not consecutive_result.violations(
        lambda p: 2 * (2 * p.error + 3) + 2 + 4
    )
