"""E20 — The consistency–robustness trade-off (Section 10, explored).

The paper's open problem: do the Kumar–Purohit–Svitkina-style trade-offs
from online algorithms with predictions exist in the distributed setting?
We instantiate the natural candidate — a trust parameter λ controlling
how long the measure-uniform algorithm runs before the reference takes
over (``HedgedConsecutiveTemplate``) — against the O(Δ² + log* d) Linial
MIS reference on the greedy worst case, and measure both ends:

* *good predictions* (η₁ ≈ 12): cost is f(η) + c iff λ·r ≥ f(η);
* *bad predictions* (all-zeros, η₁ = n): cost ≈ c + λ·r + c' + r.

Measured shape: the λ sweep trades a larger degradation window against a
λ·r-proportional worst case — the distributed analogue of the online
trade-off exists for this construction.  (A companion observation, pinned
by a unit test: when R = U, hedging is free — U's steady progress means
no rounds are wasted.)
"""

from repro import HedgedConsecutiveTemplate
from repro.algorithms.mis import (
    GreedyMISAlgorithm,
    LinialMISAlgorithm,
    MISCleanupAlgorithm,
    MISInitializationAlgorithm,
)
from repro.bench import Table
from repro.core import run
from repro.errors import eta1
from repro.graphs import line, sorted_path_ids
from repro.predictions import all_zeros_mis, perfect_predictions
from repro.problems import MIS


def hedged(trust):
    return HedgedConsecutiveTemplate(
        MISInitializationAlgorithm(),
        GreedyMISAlgorithm(),
        MISCleanupAlgorithm(),
        LinialMISAlgorithm(),
        trust=trust,
    )


def test_e20_trust_sweep(once):
    def experiment():
        graph = sorted_path_ids(line(96))
        reference_cap = LinialMISAlgorithm().round_bound(
            graph.n, graph.delta, graph.d
        )

        base = perfect_predictions(MIS, graph, seed=1)
        good = dict(base)
        for node in range(1, 13):  # small corrupted segment
            good[node] = 0
        bad = all_zeros_mis(graph)
        good_error = eta1(graph, good)

        table = Table(
            f"E20: trust sweep (sorted line n=96, reference cap {reference_cap})",
            [
                "lambda",
                f"good rounds (eta1={good_error})",
                "bad rounds (eta1=96)",
            ],
        )
        rows = []
        for trust in (0.0, 0.25, 0.5, 1.0, 2.0):
            good_run = run(hedged(trust), graph, good)
            bad_run = run(hedged(trust), graph, bad)
            assert MIS.is_solution(graph, good_run.outputs)
            assert MIS.is_solution(graph, bad_run.outputs)
            table.add_row(trust, good_run.rounds, bad_run.rounds)
            rows.append((trust, good_run.rounds, bad_run.rounds))
        return table, (rows, reference_cap, good_error)

    table, (rows, cap, good_error) = once(experiment)
    table.print()
    by_trust = {trust: (good, bad) for trust, good, bad in rows}
    # Once the U budget covers the error, good-prediction cost is f(eta)+c.
    full_trust_good = by_trust[1.0][0]
    assert full_trust_good <= good_error + 3 + 2
    # Worst case grows with lambda and respects (1+lambda)*cap + O(1).
    assert by_trust[2.0][1] >= by_trust[0.0][1]
    for trust, (good, bad) in by_trust.items():
        assert bad <= 3 + trust * cap + 2 + 1 + cap + 2
    # And zero trust sacrifices nothing on the worst case: it is within
    # O(1) of the raw reference cost.
    reference_alone = by_trust[0.0][1]
    assert reference_alone <= cap + 3 + 1 + 2
