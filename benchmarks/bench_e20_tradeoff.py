"""E20 — The consistency–robustness trade-off (Section 10, explored).

The paper's open problem: do the Kumar–Purohit–Svitkina-style trade-offs
from online algorithms with predictions exist in the distributed setting?
We instantiate the natural candidate — a trust parameter λ controlling
how long the measure-uniform algorithm runs before the reference takes
over (``HedgedConsecutiveTemplate``, built by the
:func:`repro.bench.algorithms.mis_hedged` factory) — against the
O(Δ² + log* d) Linial MIS reference on the greedy worst case, and measure
both ends as one :class:`repro.exec.Sweep` (λ × {good, bad} predictions):

* *good predictions* (η₁ ≈ 12): cost is f(η) + c iff λ·r ≥ f(η);
* *bad predictions* (all-zeros, η₁ = n): cost ≈ c + λ·r + c' + r.

Measured shape: the λ sweep trades a larger degradation window against a
λ·r-proportional worst case — the distributed analogue of the online
trade-off exists for this construction.  (A companion observation, pinned
by a unit test: when R = U, hedging is free — U's steady progress means
no rounds are wasted.)  The executor port is pinned to the pre-executor
measured rounds, seed-for-seed.
"""

from repro.algorithms.mis import LinialMISAlgorithm
from repro.bench import Table
from repro.bench.workloads import corrupted_segment_mis, sorted_line
from repro.exec import AlgorithmSpec, GraphSpec, PredictionSpec, Sweep

TRUSTS = (0.0, 0.25, 0.5, 1.0, 2.0)

#: (good rounds, bad rounds) per λ from the pre-executor, run()-per-point
#: version of this benchmark.  The port must reproduce them exactly.
EXPECTED_ROUNDS = {
    0.0: (33, 33),
    0.25: (41, 41),
    0.5: (15, 49),
    1.0: (15, 65),
    2.0: (15, 95),
}


def test_e20_trust_sweep(once):
    def experiment():
        n = 96
        graph = sorted_line(n)
        reference_cap = LinialMISAlgorithm().round_bound(
            graph.n, graph.delta, graph.d
        )
        sweep = Sweep(name="e20-tradeoff")
        graph_spec = GraphSpec.of(sorted_line, n)
        predictions = {
            "good": PredictionSpec.of(corrupted_segment_mis, 12),
            "bad": PredictionSpec.of("all_zeros_mis"),
        }
        for trust in TRUSTS:
            for pred_label, pred in predictions.items():
                sweep.add(
                    f"trust={trust}/{pred_label}",
                    graph_spec,
                    AlgorithmSpec.of("mis_hedged", trust),
                    predictions=pred,
                    problem="mis",
                    seed=0,
                )
        result = sweep.run("serial")
        assert result.all_valid
        rows = result.by_label()
        good_error = rows["trust=0.0/good"].error

        table = Table(
            f"E20: trust sweep (sorted line n=96, reference cap {reference_cap})",
            [
                "lambda",
                f"good rounds (eta1={good_error})",
                "bad rounds (eta1=96)",
            ],
        )
        measured = []
        for trust in TRUSTS:
            good_rounds = rows[f"trust={trust}/good"].rounds
            bad_rounds = rows[f"trust={trust}/bad"].rounds
            table.add_row(trust, good_rounds, bad_rounds)
            measured.append((trust, good_rounds, bad_rounds))
        return table, (measured, reference_cap, good_error)

    table, (rows, cap, good_error) = once(experiment)
    table.print()
    by_trust = {trust: (good, bad) for trust, good, bad in rows}
    # Seed-for-seed identical to the pre-executor benchmark.
    for trust, rounds in by_trust.items():
        assert rounds == EXPECTED_ROUNDS[trust]
    # Once the U budget covers the error, good-prediction cost is f(eta)+c.
    full_trust_good = by_trust[1.0][0]
    assert full_trust_good <= good_error + 3 + 2
    # Worst case grows with lambda and respects (1+lambda)*cap + O(1).
    assert by_trust[2.0][1] >= by_trust[0.0][1]
    for trust, (good, bad) in by_trust.items():
        assert bad <= 3 + trust * cap + 2 + 1 + cap + 2
    # And zero trust sacrifices nothing on the worst case: it is within
    # O(1) of the raw reference cost.
    reference_alone = by_trust[0.0][1]
    assert reference_alone <= cap + 3 + 1 + 2
