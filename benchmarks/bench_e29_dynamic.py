"""E29 — Dynamic epoch streams: warm starts, recourse, staleness.

The paper's motivating scenario (Section 1.1) iterated: each epoch's
solution is carried forward as the next epoch's *prediction*
(``repro.dynamic``), so prediction error is no longer injected noise but
the genuine staleness produced by churn.  Three measured claims:

* **degradation vs. staleness**: mean recourse (standing nodes whose
  output flips) and mean rounds-to-repair are weakly increasing in the
  churn applied per epoch — more churn, staler predictions, more work;
* **warm starts win**: at every churn level the warm-started runs take
  fewer total rounds than the same instances solved from scratch with
  default predictions (and at zero churn the repair cost collapses to
  the consistency floor);
* **temporal streams are reproducible offline**: the timestamp-bucketed
  dataset loader falls back to a deterministic synthetic event stream
  (no downloads), its sliding window produces genuine deletions, and
  two replays of the same stream are row-for-row identical.

Set ``REPRO_E29_N`` to scale the base graph (default 120; expected
degree is held at ~6 as n grows).  CI's ``dynamic-smoke`` job runs the
same shape through ``repro dynamic`` twice and gates it against the
committed ``benchmarks/BENCH_e29_dynamic.json`` baseline (per-epoch
determinism — rounds, messages, recourse, scratch rounds — plus round
throughput).
"""

import os
import warnings

from repro.bench.algorithms import mis_simple
from repro.dynamic import DynamicRunner, SyntheticChurnStream, temporal_stream
from repro.graphs import erdos_renyi
from repro.problems import MIS

#: Base-graph size (expected degree stays ~6 as this scales).
N = int(os.environ.get("REPRO_E29_N", "120"))

EDGE_P = min(0.5, 6.0 / N)
EPOCHS = 6
SEEDS = (0, 1, 2)
CHURN_LEVELS = (0, 2, 6, 12, 24)


def _curve_point(churn: int, seed: int):
    """Totals over the churned epochs (1..EPOCHS) of one dynamic run."""
    graph = erdos_renyi(N, EDGE_P, seed=9)
    stream = SyntheticChurnStream(
        graph, EPOCHS, add=churn, remove=churn, seed=seed
    )
    result = DynamicRunner(mis_simple, MIS, stream, seed=seed).run()
    assert result.all_valid
    tail = result.rows[1:]
    return {
        "recourse": sum(row.recourse for row in tail),
        "warm": sum(row.rounds for row in tail),
        "scratch": sum(row.scratch_rounds for row in tail),
        "error": sum(row.error for row in tail),
    }


def test_e29_degradation_vs_staleness(once):
    """Mean recourse and mean rounds-to-repair weakly increase with the
    churn per epoch; warm starts beat solve-from-scratch at every level."""

    def execute():
        return {
            churn: [_curve_point(churn, seed) for seed in SEEDS]
            for churn in CHURN_LEVELS
        }

    curve = once(execute)
    print(f"\nE29 staleness curve (mis/simple, gnp n={N} p={EDGE_P:.3g}, "
          f"epochs={EPOCHS}, mean over {len(SEEDS)} seeds):")
    print(f"{'churn':>6}  {'recourse':>8}  {'eta1':>6}  {'warm':>6}  {'scratch':>7}")
    means = {}
    for churn in CHURN_LEVELS:
        points = curve[churn]
        means[churn] = {
            key: sum(point[key] for point in points) / len(points)
            for key in points[0]
        }
        row = means[churn]
        print(
            f"{churn:>6}  {row['recourse']:>8.1f}  {row['error']:>6.1f}  "
            f"{row['warm']:>6.1f}  {row['scratch']:>7.1f}"
        )

    for low, high in zip(CHURN_LEVELS, CHURN_LEVELS[1:]):
        assert means[low]["recourse"] <= means[high]["recourse"], (
            f"mean recourse not weakly increasing: churn {low} -> {high} "
            f"({means[low]['recourse']:.1f} -> {means[high]['recourse']:.1f})"
        )
        assert means[low]["warm"] <= means[high]["warm"], (
            f"mean rounds-to-repair not weakly increasing: churn {low} -> "
            f"{high} ({means[low]['warm']:.1f} -> {means[high]['warm']:.1f})"
        )
    assert means[0]["recourse"] == 0, "zero churn must need zero recourse"
    for churn in CHURN_LEVELS:
        for point in curve[churn]:
            assert point["warm"] < point["scratch"], (
                f"warm start lost to solve-from-scratch at churn={churn}: "
                f"{point['warm']} vs {point['scratch']} rounds"
            )


def test_e29_temporal_fallback_determinism(once):
    """The dataset loader's synthetic fallback is offline-deterministic:
    two constructions yield identical batches, the sliding window
    produces real deletions, and two full replays agree row-for-row."""

    def build():
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return temporal_stream(
                "collegemsg", epochs=5, window=2, seed=3, data_dir="data"
            )

    def execute():
        first, second = build(), build()
        batches_a = list(first.batches())
        batches_b = list(second.batches())
        result_a = DynamicRunner(mis_simple, MIS, first, seed=5).run()
        result_b = DynamicRunner(mis_simple, MIS, second, seed=5).run()
        return first, batches_a, batches_b, result_a, result_b

    stream, batches_a, batches_b, result_a, result_b = once(execute)
    assert batches_a == batches_b
    assert len(batches_a) == stream.epochs == 5
    assert any(batch.delete_edges for batch in batches_a), (
        "window=2 should age edges out of the stream"
    )
    assert result_a.equivalent_to(result_b)
    assert result_a.all_valid
    assert all(
        row.recourse is not None for row in result_a.rows if row.epoch > 0
    )
    print(
        f"\nE29 temporal fallback: {stream.name} epochs={stream.epochs} "
        f"recourse={[row.recourse for row in result_a.rows]} "
        f"warm={[row.rounds for row in result_a.rows]} "
        f"scratch={[row.scratch_rounds for row in result_a.rows]}"
    )
