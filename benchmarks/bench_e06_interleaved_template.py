"""E6 — The Interleaved Template (Lemma 9 + Corollary 10, Section 7.3).

Paper claims: interleaving the Greedy MIS Algorithm with the phased
clustering reference gives consistency 3, 2η₁- and 2η₂-degradation, and
robustness with respect to the reference.  Additionally the reference's
phases must each retire at least half the remaining nodes (that is where
the log η₁ phase count comes from).
"""

from repro.algorithms.mis import ClusteringMISReference
from repro.bench import Table
from repro.bench.algorithms import mis_interleaved
from repro.core import run
from repro.core.analysis import sweep
from repro.errors import eta2
from repro.graphs import random_regular
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import MIS
from repro.simulator import SyncEngine


def test_e06_interleaved_degradation(once):
    def experiment():
        graph = random_regular(40, 3, seed=4)
        algorithm = mis_interleaved()
        consistency = run(
            algorithm, graph, perfect_predictions(MIS, graph, seed=2)
        ).rounds

        def instances():
            for rate in (0.05, 0.2, 0.5, 1.0):
                for seed in (0, 1):
                    yield (
                        f"p={rate}/s={seed}",
                        graph,
                        noisy_predictions(MIS, graph, rate, seed=seed),
                    )

        result = sweep(algorithm, MIS, instances(), eta2, max_rounds=50000)
        table = Table(
            "E6: Interleaved Template rounds vs eta2 (3-regular n=40)",
            ["eta2", "max rounds", "bound 2(eta2+1)+3+O(1)"],
        )
        for error, rounds in result.rounds_by_error():
            table.add_row(error, rounds, 2 * (error + 1) + 5)
        return table, (consistency, result)

    table, (consistency, result) = once(experiment)
    table.print()
    assert consistency <= 3
    assert result.all_valid
    assert not result.violations(lambda p: 2 * (p.error + 1) + 3 + 2)


def test_e06_clustering_phase_halving(once):
    """Each clustering phase should retire ≥ half the remaining nodes
    (on average over seeds) — the property behind the log eta1 phase count."""

    def experiment():
        reference = ClusteringMISReference()
        table = Table(
            "E6: clustering phase-1 retirement fraction",
            ["graph", "n", "retired after phase 1", "fraction"],
        )
        fractions = []
        for seed in range(5):
            graph = random_regular(36, 3, seed=seed)
            bound = reference.phase_bound(1, graph.n, graph.delta, graph.d)
            engine = SyncEngine(
                graph, lambda v: reference.build_program(), seed=seed
            )
            outputs = engine.run(stop_after=bound).outputs
            fraction = len(outputs) / graph.n
            fractions.append(fraction)
            table.add_row(graph.name, graph.n, len(outputs), f"{fraction:.2f}")
        return table, fractions

    table, fractions = once(experiment)
    table.print()
    assert sum(fractions) / len(fractions) >= 0.5
