"""E14 — Randomized algorithms and error measures (Section 10).

Paper argument: using Luby's algorithm as the reference in the Simple
Template yields an *expected* round complexity logarithmic in the sum of
the error-component sizes, not in η₁ — because the maximum over many
components exceeds each component's expectation.  Workload: a forest of
many short paths (the paper uses n/log log n paths of log log n nodes).

Measured shape: with η₁ (path length) held fixed, the max-over-components
round count grows as the number of components grows, while a single
component's round count stays put.
"""

import math

from repro.algorithms.mis import LubyMISAlgorithm
from repro.bench import Table
from repro.core import run
from repro.graphs import path_forest
from repro.problems import MIS


def average_rounds(graph, seeds):
    total = 0
    for seed in seeds:
        result = run(LubyMISAlgorithm(), graph, seed=seed)
        assert MIS.is_solution(graph, result.outputs)
        total += result.rounds
    return total / len(seeds)


def test_e14_max_over_components_grows(once):
    def experiment():
        path_length = 8  # the fixed error-component size (eta1 = 8)
        seeds = range(12)
        table = Table(
            "E14 (Section 10): Luby on forests of 8-node paths "
            "(avg rounds over 12 seeds)",
            ["#paths", "total n", "eta1", "avg max rounds"],
        )
        rows = []
        for num_paths in (1, 8, 64, 256):
            graph = path_forest(num_paths, path_length)
            avg = average_rounds(graph, seeds)
            table.add_row(num_paths, graph.n, path_length, f"{avg:.2f}")
            rows.append((num_paths, avg))
        return table, rows

    table, rows = once(experiment)
    table.print()
    single = rows[0][1]
    many = rows[-1][1]
    # The same per-component problem takes measurably longer when the
    # maximum is over 256 components: the global/local measure gap.
    assert many > single
    # And the growth is mild (logarithmic in the component count).
    assert many <= single + 2 * math.log2(256)


def test_e14_simple_template_with_luby_reference(once):
    """The paper's exact Section 10 setting: Luby as the reference in the
    Simple Template, with predictions bad on every component (η₁ fixed).
    The expected round count tracks the number of components, not η₁."""

    def experiment():
        from repro.algorithms.mis import MISInitializationAlgorithm
        from repro.bench import Table
        from repro.core import SimpleTemplate
        from repro.predictions import all_zeros_mis

        algorithm = SimpleTemplate(
            MISInitializationAlgorithm(), LubyMISAlgorithm()
        )
        seeds = range(10)
        table = Table(
            "E14: Simple(init, Luby) on 8-node-path forests, all-zeros "
            "predictions (avg over 10 seeds)",
            ["#paths", "eta1", "avg rounds"],
        )
        rows = []
        for num_paths in (1, 16, 128):
            graph = path_forest(num_paths, 8)
            predictions = all_zeros_mis(graph)
            total = 0
            for seed in seeds:
                result = run(algorithm, graph, predictions, seed=seed)
                assert MIS.is_solution(graph, result.outputs)
                total += result.rounds
            average = total / len(seeds)
            table.add_row(num_paths, 8, f"{average:.2f}")
            rows.append((num_paths, average))
        return table, rows

    table, rows = once(experiment)
    table.print()
    # eta1 is constant, yet the rounds grow with the component count —
    # the paper's argument that, for randomized references, expected
    # rounds follow the *sum*-like, not the max-based, measure.
    assert rows[-1][1] > rows[0][1]
