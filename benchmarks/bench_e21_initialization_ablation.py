"""E21 — Ablation: base algorithm vs reasonable initialization (Section 4).

The paper distinguishes the MIS Base Algorithm (pruning: outputs only
where predictions are locally perfect) from the MIS Initialization
Algorithm (identifier tie-breaking among predicted-1 neighbors), noting
the latter's partial solution always *contains* the former's.  This
ablation quantifies what the tie-breaking buys when the follow-up is the
Greedy MIS Algorithm: exactly its 2-round head start — the
initialization's tie-break *is* greedy's first joining round, so
Simple(Init, Greedy) = Simple(Base, Greedy) − 2 rounds on every family
(all-ones predictions shown).  The tie-break matters more in front of
references that do not break symmetry by identifier.

A second ablation pins the templates' safe-pause rounding: slicing the
Greedy MIS Algorithm anywhere but an even round would break
extendability; the rounding in the templates ensures this never happens
(checked here by sweeping Consecutive switch points).
"""

from repro.algorithms.mis import (
    GreedyMISAlgorithm,
    MISBaseAlgorithm,
    MISInitializationAlgorithm,
)
from repro.bench import Table
from repro.core import SimpleTemplate, run
from repro.graphs import erdos_renyi, line, ring, sorted_path_ids
from repro.predictions import all_ones_mis
from repro.problems import MIS
from repro.simulator import SyncEngine


def test_e21_initialization_beats_base_on_all_ones(once):
    def experiment():
        base_algorithm = SimpleTemplate(MISBaseAlgorithm(), GreedyMISAlgorithm())
        init_algorithm = SimpleTemplate(
            MISInitializationAlgorithm(), GreedyMISAlgorithm()
        )
        table = Table(
            "E21: B ablation on all-ones predictions (rounds)",
            ["graph", "with base B", "with init B", "init decided up front"],
        )
        rows = []
        for graph in (
            sorted_path_ids(line(48)),
            ring(48),
            erdos_renyi(48, 0.1, seed=3),
        ):
            predictions = all_ones_mis(graph)
            with_base = run(base_algorithm, graph, predictions)
            with_init = run(init_algorithm, graph, predictions)
            assert MIS.is_solution(graph, with_base.outputs)
            assert MIS.is_solution(graph, with_init.outputs)
            # How much the initialization alone decides in its 3 rounds:
            engine = SyncEngine(
                graph,
                lambda v: MISInitializationAlgorithm().build_program(),
                predictions=predictions,
            )
            decided = len(engine.run(stop_after=3).outputs)
            table.add_row(
                graph.name, with_base.rounds, with_init.rounds, decided
            )
            rows.append((graph.name, with_base.rounds, with_init.rounds, decided))
        return table, rows

    table, rows = once(experiment)
    table.print()
    for name, base_rounds, init_rounds, decided in rows:
        assert init_rounds <= base_rounds, name
        assert decided > 0, name
        # The measured ablation finding: with the Greedy MIS Algorithm as
        # U, the initialization's identifier tie-break is exactly greedy's
        # own first joining round, so the gap is precisely the 2-round
        # head start — never more, never less, on every family.  (The
        # initialization buys more against references that do not
        # tie-break by identifier.)
        assert base_rounds - init_rounds == 2, name


def test_e21_pause_alignment_preserves_extendability(once):
    """Cut the Greedy MIS Algorithm at every even round (the template's
    allowed switch points) and verify extendability each time; odd-round
    cuts would violate it (also demonstrated)."""

    def experiment():
        graph = sorted_path_ids(line(24))
        even_ok = []
        odd_violations = 0
        for stop in range(2, 16, 2):
            engine = SyncEngine(
                graph, lambda v: GreedyMISAlgorithm().build_program()
            )
            outputs = engine.run(stop_after=stop).outputs
            even_ok.append(MIS.is_extendable(graph, outputs))
        for stop in range(1, 16, 2):
            engine = SyncEngine(
                graph, lambda v: GreedyMISAlgorithm().build_program()
            )
            outputs = engine.run(stop_after=stop).outputs
            if not MIS.is_extendable(graph, outputs):
                odd_violations += 1
        table = Table(
            "E21: greedy pause alignment",
            ["even-round cuts extendable", "odd-round cuts violating"],
        )
        table.add_row(all(even_ok), odd_violations)
        return table, (even_ok, odd_violations)

    table, (even_ok, odd_violations) = once(experiment)
    table.print()
    assert all(even_ok)
    # Odd cuts leave a 1-output whose neighbor has not yet answered —
    # precisely why safe_pause_interval = 2.
    assert odd_violations > 0
