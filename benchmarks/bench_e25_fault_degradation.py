"""E25 — Graceful degradation under message loss and crash-recovery.

The paper's model assumes reliable synchronous channels; this experiment
measures what survives when that assumption breaks.  The hardened MIS
template (prediction-based initialization + greedy reference, both
leaning only on the engine's reliable termination notifications) runs
under a seeded message adversary at 0%, 1%, 5% and 20% drop rates, with
and without crashes, on three graph families.  Runs use
``on_round_limit="partial"`` so an adversary that starves the round
budget yields a measurable partial result instead of an exception.

The whole 108-run grid executes as one :class:`repro.exec.Sweep` on the
process-pool backend: every run carries an explicit seed and a
:class:`~repro.exec.plan.FaultSpec` naming
:func:`~repro.faults.harness.random_crash_plan` with that seed, so the
fan-out reproduces the old ``degradation_sweep`` loop seed-for-seed (a
serial re-execution of any cell gives the same row).  Per-cell survivor
metrics come from :func:`repro.faults.harness.degradation_metrics`.

Claims checked:

* safety is unconditional: the survivor-restricted MIS validators report
  zero violations at every drop rate, with and without crash-recovery;
* degradation is graceful: mean survivor coverage is weakly monotone in
  the drop rate (up to a small seed-noise slack) and perfect at rate 0
  without crashes;
* loss costs only time: mean executed rounds never decrease as the drop
  rate grows, and at 20% loss the round budget makes some runs measurably
  incomplete (coverage < 1) — curves, not cliffs.
"""

from repro.bench import Table
from repro.bench.workloads import perfect_mis, sorted_line
from repro.core import RunConfig
from repro.exec import FaultSpec, GraphSpec, PredictionSpec, Sweep
from repro.faults import degradation_metrics

DROP_RATES = (0.0, 0.01, 0.05, 0.2)
SEEDS = (0, 1, 2)
# Round budgets sized just above each family's clean-run round count so
# that heavy loss visibly eats into coverage instead of just adding
# rounds (clean hardened runs finish in 3; 20% loss pushes past 7).
FAMILIES = (
    ("gnp48", GraphSpec.of("erdos_renyi", 48, 0.1, seed=3), 7),
    ("grid-6x8", GraphSpec.of("grid2d", 6, 8), 7),
    ("sortedline-64", GraphSpec.of(sorted_line, 64), 7),
)
CONFIGS = (
    ("no crashes", 0.0, None),
    ("crash-stop 10%", 0.1, None),
    ("crash-recovery 10%", 0.1, 3),
)


def _summarize(rows):
    """Per-rate curve from sweep rows — the same aggregation
    :func:`repro.faults.harness.summarize_points` applies to its points."""
    curve = []
    for rate in DROP_RATES:
        group = [row for row in rows if row.metrics["drop_rate"] == rate]
        curve.append(
            {
                "drop_rate": rate,
                "runs": len(group),
                "mean_rounds_executed": sum(r.rounds_executed for r in group)
                / len(group),
                "mean_coverage": sum(r.metrics["coverage"] for r in group)
                / len(group),
                "mean_solution_size": sum(r.solution_size for r in group)
                / len(group),
                "violations": sum(r.metrics["violations"] for r in group),
                "stuck_runs": sum(1 for r in group if r.stuck),
                "dropped_messages": sum(r.dropped_messages for r in group),
            }
        )
    return curve


def test_e25_fault_degradation(once):
    def experiment():
        sweep = Sweep(name="e25-degradation")
        coordinates = []  # (family, config, rate) per cell, in add order
        for family_name, graph_spec, budget in FAMILIES:
            config = RunConfig(max_rounds=budget, on_round_limit="partial")
            for config_name, crash_fraction, recover_after in CONFIGS:
                for rate in DROP_RATES:
                    for seed in SEEDS:
                        sweep.add(
                            f"{family_name}/{config_name}/d={rate}/s={seed}",
                            graph_spec,
                            "mis_hardened_simple",
                            predictions=PredictionSpec.of(perfect_mis, seed=seed),
                            faults=FaultSpec.of(
                                "random_crash_plan",
                                crash_fraction,
                                recover_after=recover_after,
                                drop_rate=rate,
                                seed=seed,
                            ),
                            problem="mis",
                            seed=seed,
                            config=config,
                            metrics=degradation_metrics,
                        )
                        coordinates.append((family_name, config_name, rate))
        result = sweep.run("process")

        # Rows come back in cell order, so they zip with the coordinates
        # recorded at add time (labels encode the same facts, but parsing
        # floats back out of labels is fragile).
        by_cell = {}
        for row, (family_name, config_name, rate) in zip(result.rows, coordinates):
            row.metrics["drop_rate"] = rate
            by_cell.setdefault((family_name, config_name), []).append(row)

        table = Table(
            "E25: survivor coverage under message loss (hardened MIS)",
            ["graph", "faults", "drop", "rounds", "coverage", "|S|",
             "stuck", "violations"],
        )
        curves = []
        for family_name, _, _ in FAMILIES:
            for config_name, _, _ in CONFIGS:
                rows = _summarize(by_cell[(family_name, config_name)])
                for row in rows:
                    table.add_row(
                        family_name,
                        config_name,
                        row["drop_rate"],
                        round(row["mean_rounds_executed"], 1),
                        round(row["mean_coverage"], 3),
                        round(row["mean_solution_size"], 1),
                        row["stuck_runs"],
                        row["violations"],
                    )
                curves.append((family_name, config_name, rows))
        return table, curves

    table, curves = once(experiment)
    table.print()

    degraded_somewhere = False
    for family_name, config_name, rows in curves:
        label = f"{family_name}/{config_name}"
        # Safety is unconditional: no survivor-restricted violation at
        # any fault rate, in any configuration.
        for row in rows:
            assert row["violations"] == 0, (
                f"{label}: violations at drop={row['drop_rate']}"
            )
        # Perfect consistency baseline: nothing lost, nothing crashed.
        if config_name == "no crashes":
            assert rows[0]["mean_coverage"] == 1.0, label
        # Graceful degradation: coverage weakly monotone in the drop
        # rate, with a small slack for seed noise.
        for lighter, heavier in zip(rows, rows[1:]):
            assert (
                heavier["mean_coverage"] <= lighter["mean_coverage"] + 0.05
            ), (
                f"{label}: coverage rose from drop={lighter['drop_rate']} "
                f"to {heavier['drop_rate']}"
            )
            # Loss costs time: executed rounds never shrink as drops grow.
            assert (
                heavier["mean_rounds_executed"]
                >= lighter["mean_rounds_executed"] - 0.5
            ), label
        if rows[-1]["mean_coverage"] < 1.0:
            degraded_somewhere = True
    # The 20% adversary must actually bite somewhere — otherwise the
    # budgets are too loose and the experiment measures nothing.
    assert degraded_somewhere
