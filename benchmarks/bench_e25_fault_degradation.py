"""E25 — Graceful degradation under message loss and crash-recovery.

The paper's model assumes reliable synchronous channels; this experiment
measures what survives when that assumption breaks.  The hardened MIS
template (prediction-based initialization + greedy reference, both
leaning only on the engine's reliable termination notifications) runs
under a seeded message adversary at 0%, 1%, 5% and 20% drop rates, with
and without crashes, on three graph families.  Runs use
``on_round_limit="partial"`` so an adversary that starves the round
budget yields a measurable partial result instead of an exception.

Claims checked:

* safety is unconditional: the survivor-restricted MIS validators report
  zero violations at every drop rate, with and without crash-recovery;
* degradation is graceful: mean survivor coverage is weakly monotone in
  the drop rate (up to a small seed-noise slack) and perfect at rate 0
  without crashes;
* loss costs only time: mean executed rounds never decrease as the drop
  rate grows, and at 20% loss the round budget makes some runs measurably
  incomplete (coverage < 1) — curves, not cliffs.
"""

from repro.bench import Table
from repro.bench.algorithms import mis_hardened_simple
from repro.faults import degradation_sweep, summarize_points
from repro.graphs import erdos_renyi, grid2d, line, sorted_path_ids
from repro.predictions import perfect_predictions
from repro.problems import MIS

DROP_RATES = (0.0, 0.01, 0.05, 0.2)
SEEDS = (0, 1, 2)
# Round budgets sized just above each family's clean-run round count so
# that heavy loss visibly eats into coverage instead of just adding
# rounds (clean hardened runs finish in 3; 20% loss pushes past 7).
FAMILIES = (
    ("gnp48", erdos_renyi(48, 0.1, seed=3), 7),
    ("grid-6x8", grid2d(6, 8), 7),
    ("sortedline-64", sorted_path_ids(line(64)), 7),
)
CONFIGS = (
    ("no crashes", 0.0, None),
    ("crash-stop 10%", 0.1, None),
    ("crash-recovery 10%", 0.1, 3),
)


def test_e25_fault_degradation(once):
    def experiment():
        table = Table(
            "E25: survivor coverage under message loss (hardened MIS)",
            ["graph", "faults", "drop", "rounds", "coverage", "|S|",
             "stuck", "violations"],
        )
        curves = []
        for family_name, graph, budget in FAMILIES:
            for config_name, crash_fraction, recover_after in CONFIGS:
                points = degradation_sweep(
                    mis_hardened_simple(),
                    MIS,
                    graph,
                    lambda seed: perfect_predictions(MIS, graph, seed=seed),
                    drop_rates=DROP_RATES,
                    seeds=SEEDS,
                    crash_fraction=crash_fraction,
                    recover_after=recover_after,
                    max_rounds=budget,
                )
                rows = summarize_points(points)
                for row in rows:
                    table.add_row(
                        family_name,
                        config_name,
                        row["drop_rate"],
                        round(row["mean_rounds_executed"], 1),
                        round(row["mean_coverage"], 3),
                        round(row["mean_solution_size"], 1),
                        row["stuck_runs"],
                        row["violations"],
                    )
                curves.append((family_name, config_name, rows))
        return table, curves

    table, curves = once(experiment)
    table.print()

    degraded_somewhere = False
    for family_name, config_name, rows in curves:
        label = f"{family_name}/{config_name}"
        # Safety is unconditional: no survivor-restricted violation at
        # any fault rate, in any configuration.
        for row in rows:
            assert row["violations"] == 0, (
                f"{label}: violations at drop={row['drop_rate']}"
            )
        # Perfect consistency baseline: nothing lost, nothing crashed.
        if config_name == "no crashes":
            assert rows[0]["mean_coverage"] == 1.0, label
        # Graceful degradation: coverage weakly monotone in the drop
        # rate, with a small slack for seed noise.
        for lighter, heavier in zip(rows, rows[1:]):
            assert (
                heavier["mean_coverage"] <= lighter["mean_coverage"] + 0.05
            ), (
                f"{label}: coverage rose from drop={lighter['drop_rate']} "
                f"to {heavier['drop_rate']}"
            )
            # Loss costs time: executed rounds never shrink as drops grow.
            assert (
                heavier["mean_rounds_executed"]
                >= lighter["mean_rounds_executed"] - 0.5
            ), label
        if rows[-1]["mean_coverage"] < 1.0:
            degraded_somewhere = True
    # The 20% adversary must actually bite somewhere — otherwise the
    # budgets are too loose and the experiment measures nothing.
    assert degraded_somewhere
