"""E12 — (Δ+1)-Vertex Coloring with predictions (Section 8.2).

Paper claims: the base/initialization algorithms are consistent
(2 rounds); the measure-uniform palette algorithm finishes a component of
``s`` nodes within ``s`` rounds (optimal by Lemma 4); the Consecutive and
Parallel compositions stay within their template bounds with the
Linial-style reference (O(Δ² + log* d), substituted — see DESIGN.md).
"""

from repro.algorithms.coloring import (
    PaletteGreedyColoringAlgorithm,
    linial_round_bound,
)
from repro.bench import Table, standard_graph_suite
from repro.bench.algorithms import (
    coloring_consecutive,
    coloring_parallel,
    coloring_simple,
)
from repro.core import run
from repro.core.analysis import sweep
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import VERTEX_COLORING


def test_e12_measure_uniform_bound(once):
    def experiment():
        table = Table(
            "E12: palette greedy coloring rounds vs component size",
            ["graph", "rounds", "bound max|S|", "valid"],
        )
        failures = []
        for graph in standard_graph_suite():
            result = run(PaletteGreedyColoringAlgorithm(), graph)
            bound = max((len(c) for c in graph.components()), default=1)
            valid = VERTEX_COLORING.is_solution(graph, result.outputs)
            table.add_row(graph.name, result.rounds, bound, valid)
            if result.rounds > bound or not valid:
                failures.append(graph.name)
        return table, failures

    table, failures = once(experiment)
    table.print()
    assert not failures


def test_e12_templates_sweep(once):
    def experiment():
        graph = connected_erdos_renyi(40, 0.08, seed=9)
        algorithms = {
            "simple": coloring_simple(),
            "consecutive": coloring_consecutive(),
            "parallel": coloring_parallel(),
        }

        def instances():
            for rate in (0.0, 0.2, 0.5, 1.0):
                for seed in (0, 1):
                    yield (
                        f"p={rate}/s={seed}",
                        graph,
                        noisy_predictions(
                            VERTEX_COLORING, graph, rate, seed=seed
                        ),
                    )

        measure = lambda g, p: eta1(g, p, "vertex-coloring")
        results = {
            name: sweep(algorithm, VERTEX_COLORING, instances(), measure)
            for name, algorithm in algorithms.items()
        }
        consistency = {
            name: run(
                algorithm,
                graph,
                perfect_predictions(VERTEX_COLORING, graph, seed=2),
            ).rounds
            for name, algorithm in algorithms.items()
        }
        cap = linial_round_bound(graph.d, graph.delta)

        table = Table(
            "E12: coloring templates (ER n=40) — max rounds per eta1",
            ["eta1", "simple", "consecutive", "parallel"],
        )
        all_errors = sorted(
            {e for r in results.values() for e, _ in r.rounds_by_error()}
        )
        series = {
            name: dict(result.rounds_by_error())
            for name, result in results.items()
        }
        for error in all_errors:
            table.add_row(
                error,
                series["simple"].get(error, "-"),
                series["consecutive"].get(error, "-"),
                series["parallel"].get(error, "-"),
            )
        return table, (results, consistency, cap)

    table, (results, consistency, cap) = once(experiment)
    table.print()
    assert all(rounds <= 2 for rounds in consistency.values()), consistency
    for name, result in results.items():
        assert result.all_valid, name
    # Simple: eta1-degrading (f(s) = s for the palette greedy).
    assert not results["simple"].violations(lambda p: p.error + 2)
    # Parallel: eta1-degrading with small additive slack.
    assert not results["parallel"].violations(lambda p: p.error + 2 + 3)
    # All bounded by the robustness cap.
    assert results["consecutive"].max_rounds() <= 2 + 2 * (cap + 1) + 2
