"""E15 — Error-measure orderings and behaviour (Section 5).

Paper claims, checked over a randomized instance sweep:

* η₂ ≤ η₁ always, with large gaps on cliques/stars;
* η_bw ≤ η₁ always; η_t ≤ η_bw ≤ η₁ on rooted trees;
* μ₁ is monotone (components of induced subgraphs never score higher);
* η_H (the rejected global Hamming measure) can exceed η₁ by a factor of
  the component count.
"""

import random

from repro.bench import Table
from repro.errors import eta1, eta2, eta_bw, eta_hamming, eta_t, mu2
from repro.errors.components import error_components
from repro.graphs import clique, erdos_renyi, path_forest, random_rooted_tree, star
from repro.predictions import all_ones_mis, all_zeros_mis


def random_bits(graph, seed):
    rng = random.Random(f"{seed}:bits")
    return {v: rng.randint(0, 1) for v in graph.nodes}


def test_e15_orderings_hold_on_random_instances(once):
    def experiment():
        violations = []
        checked = 0
        for seed in range(30):
            graph = erdos_renyi(20, 0.2, seed=seed)
            predictions = random_bits(graph, seed)
            one = eta1(graph, predictions)
            if eta2(graph, predictions) > one:
                violations.append(("eta2", seed))
            if eta_bw(graph, predictions) > one:
                violations.append(("eta_bw", seed))
            checked += 1
        for seed in range(20):
            graph = random_rooted_tree(25, seed=seed)
            predictions = random_bits(graph, seed)
            if not (
                eta_t(graph, predictions)
                <= eta_bw(graph, predictions)
                <= eta1(graph, predictions)
            ):
                violations.append(("eta_t chain", seed))
            checked += 1
        table = Table(
            "E15: ordering checks over random instances",
            ["checks", "violations"],
        )
        table.add_row(checked, len(violations))
        return table, violations

    table, violations = once(experiment)
    table.print()
    assert not violations, violations


def test_e15_eta2_gap_families(once):
    def experiment():
        table = Table(
            "E15: eta1 vs eta2 on the paper's extremal families (all-ones)",
            ["graph", "eta1", "eta2"],
        )
        rows = []
        for graph in (clique(16), star(16), clique(32), star(32)):
            predictions = all_ones_mis(graph)
            rows.append(
                (graph.name, eta1(graph, predictions), eta2(graph, predictions))
            )
            table.add_row(*rows[-1])
        return table, rows

    table, rows = once(experiment)
    table.print()
    for name, one, two in rows:
        assert one == int(name.split("-")[1])
        assert two == 2


def test_e15_mu2_monotonicity(once):
    def experiment():
        violations = []
        for seed in range(15):
            graph = erdos_renyi(16, 0.25, seed=seed)
            predictions = random_bits(graph, seed + 50)
            for component in error_components("mis", graph, predictions):
                members = sorted(component)
                sub = members[: max(1, len(members) // 2)]
                for piece in graph.subgraph(sub).components():
                    if mu2(graph, piece) > mu2(graph, component):
                        violations.append((seed, piece))
        table = Table("E15: mu2 monotonicity", ["violations"])
        table.add_row(len(violations))
        return table, violations

    table, violations = once(experiment)
    table.print()
    assert not violations


def test_e15_hamming_is_global(once):
    """η_H sums over components while η₁ takes the maximum — the paper's
    reason for rejecting it."""

    def experiment():
        table = Table(
            "E15: global eta_H vs local eta1 on path forests (all-zeros)",
            ["#paths", "eta1", "eta_H"],
        )
        rows = []
        for num_paths in (2, 4, 8):
            graph = path_forest(num_paths, 3)
            predictions = all_zeros_mis(graph)
            rows.append(
                (
                    num_paths,
                    eta1(graph, predictions),
                    eta_hamming(graph, predictions),
                )
            )
            table.add_row(*rows[-1])
        return table, rows

    table, rows = once(experiment)
    table.print()
    for num_paths, one, hamming in rows:
        assert one == 3
        assert hamming >= num_paths
