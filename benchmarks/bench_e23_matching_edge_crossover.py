"""E23 — Robustness crossovers for Matching and Edge Coloring (Section 8).

The E18 crossover for MIS relied on Corollary 12's n-independent
reference.  With the line-graph Linial constructions (O(Δ² + log* d)
edge coloring; matching via its color classes) the Matching and Edge
Coloring problems get the same story: on sorted-id lines their greedy
measure-uniform algorithms cost Θ(n), so past the reference cap the
Consecutive Template flattens while the Simple Template keeps paying.
"""

from repro.algorithms.edge_coloring import (
    EdgeColoringBaseAlgorithm,
    EdgeColoringCleanupAlgorithm,
    GreedyEdgeColoringAlgorithm,
    LineGraphEdgeColoringAlgorithm,
)
from repro.algorithms.matching import (
    ColoredMatchingAlgorithm,
    GreedyMatchingAlgorithm,
    MatchingCleanupAlgorithm,
    MatchingInitializationAlgorithm,
)
from repro.bench import Table
from repro.core import ConsecutiveTemplate, SimpleTemplate, run
from repro.graphs import line, sorted_path_ids
from repro.predictions import perfect_predictions
from repro.problems import EDGE_COLORING, MATCHING, UNMATCHED


def test_e23_matching_crossover(once):
    def experiment():
        reference = ColoredMatchingAlgorithm()
        simple = SimpleTemplate(
            MatchingInitializationAlgorithm(), GreedyMatchingAlgorithm()
        )
        robust = ConsecutiveTemplate(
            MatchingInitializationAlgorithm(),
            GreedyMatchingAlgorithm(),
            MatchingCleanupAlgorithm(),
            reference,
        )
        table = Table(
            "E23: matching on sorted-id lines, all-bottom predictions",
            ["n", "reference cap", "simple rounds", "consecutive rounds"],
        )
        rows = []
        for n in (32, 64, 128, 256):
            graph = sorted_path_ids(line(n))
            cap = reference.round_bound(graph.n, graph.delta, graph.d)
            # Adversarial worst case: everyone predicted unmatched, so the
            # base algorithm outputs nothing and the whole line is one
            # error component.
            predictions = {v: UNMATCHED for v in graph.nodes}
            simple_rounds = run(simple, graph, predictions, max_rounds=50000)
            robust_rounds = run(robust, graph, predictions, max_rounds=50000)
            assert MATCHING.is_solution(graph, simple_rounds.outputs)
            assert MATCHING.is_solution(graph, robust_rounds.outputs)
            table.add_row(n, cap, simple_rounds.rounds, robust_rounds.rounds)
            rows.append((n, cap, simple_rounds.rounds, robust_rounds.rounds))
        return table, rows

    table, rows = once(experiment)
    table.print()
    # The robust composition's cost is capped (c + U-budget + c' + cap);
    # the simple one grows linearly.
    largest = rows[-1]
    n, cap, simple_rounds, robust_rounds = largest
    assert simple_rounds > 1.2 * n  # 3 rounds per 2 matched nodes
    assert robust_rounds <= 2 + 2 * (cap + 1) + 3
    assert robust_rounds < simple_rounds


def test_e23_edge_coloring_crossover(once):
    def experiment():
        reference = LineGraphEdgeColoringAlgorithm()
        simple = SimpleTemplate(
            EdgeColoringBaseAlgorithm(), GreedyEdgeColoringAlgorithm()
        )
        robust = ConsecutiveTemplate(
            EdgeColoringBaseAlgorithm(),
            GreedyEdgeColoringAlgorithm(),
            EdgeColoringCleanupAlgorithm(),
            reference,
        )
        table = Table(
            "E23: edge coloring on sorted-id lines, empty predictions",
            ["n", "reference cap", "simple rounds", "consecutive rounds"],
        )
        rows = []
        for n in (32, 64, 128, 256):
            graph = sorted_path_ids(line(n))
            cap = reference.round_bound(graph.n, graph.delta, graph.d)
            # Adversarial worst case: no edge predictions at all.
            predictions = {v: {} for v in graph.nodes}
            simple_result = run(simple, graph, predictions, max_rounds=50000)
            robust_result = run(robust, graph, predictions, max_rounds=50000)
            assert EDGE_COLORING.is_solution(graph, simple_result.outputs)
            assert EDGE_COLORING.is_solution(graph, robust_result.outputs)
            table.add_row(n, cap, simple_result.rounds, robust_result.rounds)
            rows.append((n, cap, simple_result.rounds, robust_result.rounds))
        return table, rows

    table, rows = once(experiment)
    table.print()
    n, cap, simple_rounds, robust_rounds = rows[-1]
    assert simple_rounds > 1.5 * n
    assert robust_rounds <= 2 + 2 * (cap + 1) + 3
    assert robust_rounds < simple_rounds


def test_e23_consistency_preserved(once):
    """The robust compositions keep their consistency (2 and 1 rounds)."""

    def experiment():
        graph = sorted_path_ids(line(48))
        matching_algorithm = ConsecutiveTemplate(
            MatchingInitializationAlgorithm(),
            GreedyMatchingAlgorithm(),
            MatchingCleanupAlgorithm(),
            ColoredMatchingAlgorithm(),
        )
        edge_algorithm = ConsecutiveTemplate(
            EdgeColoringBaseAlgorithm(),
            GreedyEdgeColoringAlgorithm(),
            EdgeColoringCleanupAlgorithm(),
            LineGraphEdgeColoringAlgorithm(),
        )
        matching_rounds = run(
            matching_algorithm,
            graph,
            perfect_predictions(MATCHING, graph, seed=1),
        ).rounds
        edge_rounds = run(
            edge_algorithm,
            graph,
            perfect_predictions(EDGE_COLORING, graph, seed=1),
        ).rounds
        table = Table(
            "E23: consistency of the robust compositions",
            ["problem", "rounds", "bound"],
        )
        table.add_row("matching", matching_rounds, 2)
        table.add_row("edge-coloring", edge_rounds, 1)
        return table, (matching_rounds, edge_rounds)

    table, (matching_rounds, edge_rounds) = once(experiment)
    table.print()
    assert matching_rounds <= 2
    assert edge_rounds <= 1
