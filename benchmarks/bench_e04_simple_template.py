"""E4 — The Simple Template's degradation (Observation 7, Section 7.1).

Paper claims: Simple(MIS Initialization, Greedy MIS) has consistency 3,
round complexity ≤ η₁ + 3 (Lemma 1) and ≤ η₂ + 4 (Lemma 2).  The
degradation curve (rounds vs η) is at most linear with slope 1.
"""

from repro.bench import Table
from repro.bench.algorithms import mis_simple
from repro.core.analysis import degradation_slope, sweep
from repro.errors import eta1, eta2
from repro.graphs import connected_erdos_renyi, grid2d
from repro.predictions import noisy_predictions
from repro.problems import MIS

RATES = (0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def _instances(graph):
    for rate in RATES:
        for seed in (0, 1, 2):
            yield (
                f"p={rate}/s={seed}",
                graph,
                noisy_predictions(MIS, graph, rate, seed=seed),
            )


def test_e04_eta1_degradation(once):
    def experiment():
        graph = connected_erdos_renyi(60, 0.05, seed=3)
        result = sweep(mis_simple(), MIS, _instances(graph), eta1)
        table = Table(
            "E4: Simple Template rounds vs eta1 (ER n=60)",
            ["eta1", "max rounds", "bound eta1+3"],
        )
        for error, rounds in result.rounds_by_error():
            table.add_row(error, rounds, error + 3)
        return table, result

    table, result = once(experiment)
    table.print()
    assert result.all_valid
    assert not result.violations(lambda p: p.error + 3)
    assert degradation_slope(result) <= 1.05


def test_e04_eta2_degradation(once):
    def experiment():
        graph = grid2d(8, 8)
        result = sweep(mis_simple(), MIS, _instances(graph), eta2)
        table = Table(
            "E4: Simple Template rounds vs eta2 (grid 8x8)",
            ["eta2", "max rounds", "bound eta2+4"],
        )
        for error, rounds in result.rounds_by_error():
            table.add_row(error, rounds, error + 4)
        return table, result

    table, result = once(experiment)
    table.print()
    assert result.all_valid
    assert not result.violations(lambda p: p.error + 4)
