"""E27 — Degradation under φ-bounded asynchrony (beyond the model).

The paper's model is synchronous; E25 already measured what survives
message *loss*.  This experiment measures what survives message *delay*:
the hardened MIS template runs under ``schedule="async"`` with a seeded
delay adversary at φ ∈ {0, 1, 2, 4}, crossed with drop rates and
prediction-error rates, on an Erdős–Rényi instance.  φ>0 cells arm a
send timeout so dropped sends are retransmitted with exponential
backoff; round budgets scale with the 1+φ bound stretch, mirroring the
template's own slice stretching.

The grid executes as one :class:`repro.exec.Sweep` (process backend)
with per-cell ``RunConfig``s — the φ=0 async cells share the sweep with
their eager twins, which is how the degenerate-mode claim is checked on
the very rows the table reports.  A second slice runs the Section-7/8
composition templates (``mis_interleaved``, ``mis_parallel``) through
the same delay adversary, drop-free, with their own eager twins.  The
time-degradation claims are template-generic; the *safety* claim is
not — the silence-based compositions measurably violate
survivor-restricted independence at φ>0, which is exactly the contrast
that motivates the hardened variant (asserted below as a witness).

Claims checked:

* **degenerate mode**: every φ=0 async cell is identical to its eager
  twin in rounds, executed rounds and message count — asynchrony at
  φ=0 *is* the synchronous model;
* **safety is unconditional**: zero survivor-restricted MIS violations
  at every φ, drop rate and error rate — delays (like drops) cost only
  time, because the hardened variants join only on the engine's
  reliable termination notifications;
* **delays bite, gracefully**: no message is delayed at φ=0, messages
  are delayed at every φ>0, and mean executed rounds are weakly
  monotone in φ — a degradation curve, not a cliff.

CI's ``async-smoke`` job runs the same shape through the CLI twice and
gates it against the committed ``benchmarks/BENCH_e27_async.json``
baseline (per-cell determinism plus round throughput).
"""

from repro.bench import Table
from repro.bench.workloads import noisy_for, perfect_mis
from repro.core import ExecutionPolicy, RunConfig
from repro.exec import FaultSpec, GraphSpec, PredictionSpec, Sweep
from repro.faults import degradation_metrics

PHIS = (0, 1, 2, 4)
DROP_RATES = (0.0, 0.05)
ERROR_RATES = (0.0, 0.3)
SEEDS = (0, 1)
GRAPH = GraphSpec.of("erdos_renyi", 48, 0.1, seed=3)
# Clean hardened runs finish in ~3 rounds; the 1+φ stretch scales every
# template bound, so the budget scales with it (φ=0 matches E25's 7).
BUDGET = 7
#: Section-7/8 composition templates riding the same delay adversary,
#: drop-free (they are not fault-hardened — E27 measures their *delay*
#: degradation only, not loss tolerance).
EXTRA_TEMPLATES = ("mis_interleaved", "mis_parallel")


def _predictions(error_rate, seed):
    if error_rate == 0.0:
        return PredictionSpec.of(perfect_mis, seed=seed)
    return PredictionSpec.of(noisy_for, "mis", error_rate, seed=seed)


def _add_cells(sweep):
    """Populate the grid; returns per-cell coordinates in add order."""
    coordinates = []
    for phi in PHIS:
        config = RunConfig(
            policy=ExecutionPolicy(
                schedule="async",
                phi=phi,
                send_timeout=2 if phi else None,
            ),
            max_rounds=BUDGET * (1 + phi),
            on_round_limit="partial",
        )
        for drop_rate in DROP_RATES:
            for error_rate in ERROR_RATES:
                for seed in SEEDS:
                    sweep.add(
                        f"phi={phi}/d={drop_rate}/e={error_rate}/s={seed}",
                        GRAPH,
                        "mis_hardened_simple",
                        predictions=_predictions(error_rate, seed),
                        faults=FaultSpec.of(
                            "random_crash_plan", 0.0,
                            drop_rate=drop_rate, seed=seed,
                        ),
                        problem="mis",
                        seed=seed,
                        config=config,
                        metrics=degradation_metrics,
                    )
                    coordinates.append(("async", phi, drop_rate, error_rate, seed))
    # Eager twins of the φ=0 slice: the degenerate-mode oracle.
    eager = RunConfig(max_rounds=BUDGET, on_round_limit="partial")
    for drop_rate in DROP_RATES:
        for error_rate in ERROR_RATES:
            for seed in SEEDS:
                sweep.add(
                    f"eager/d={drop_rate}/e={error_rate}/s={seed}",
                    GRAPH,
                    "mis_hardened_simple",
                    predictions=_predictions(error_rate, seed),
                    faults=FaultSpec.of(
                        "random_crash_plan", 0.0,
                        drop_rate=drop_rate, seed=seed,
                    ),
                    problem="mis",
                    seed=seed,
                    config=eager,
                    metrics=degradation_metrics,
                )
                coordinates.append(("eager", 0, drop_rate, error_rate, seed))
    # Interleaved/Parallel template rows: the alternation and parallel
    # compositions under the same adversary (drop-free), each with an
    # eager twin at φ=0 for the degenerate-mode check.
    for template in EXTRA_TEMPLATES:
        for phi in PHIS:
            config = RunConfig(
                policy=ExecutionPolicy(
                    schedule="async",
                    phi=phi,
                    send_timeout=2 if phi else None,
                ),
                max_rounds=BUDGET * (1 + phi),
                on_round_limit="partial",
            )
            for error_rate in ERROR_RATES:
                for seed in SEEDS:
                    sweep.add(
                        f"{template}/phi={phi}/e={error_rate}/s={seed}",
                        GRAPH,
                        template,
                        predictions=_predictions(error_rate, seed),
                        problem="mis",
                        seed=seed,
                        config=config,
                        metrics=degradation_metrics,
                    )
                    coordinates.append((template, phi, 0.0, error_rate, seed))
        eager_twin = RunConfig(max_rounds=BUDGET, on_round_limit="partial")
        for error_rate in ERROR_RATES:
            for seed in SEEDS:
                sweep.add(
                    f"{template}/eager/e={error_rate}/s={seed}",
                    GRAPH,
                    template,
                    predictions=_predictions(error_rate, seed),
                    problem="mis",
                    seed=seed,
                    config=eager_twin,
                    metrics=degradation_metrics,
                )
                coordinates.append((f"{template}/eager", 0, 0.0, error_rate, seed))
    return coordinates


def test_e27_async_degradation(once):
    def experiment():
        sweep = Sweep(name="e27-async")
        coordinates = _add_cells(sweep)
        result = sweep.run("process")
        return list(zip(result.rows, coordinates))

    tagged = once(experiment)

    table = Table(
        "E27: hardened MIS under φ-bounded asynchrony",
        ["phi", "drop", "err", "rounds", "coverage", "|S|",
         "delayed", "retried", "stuck", "violations"],
    )
    by_phi = {}
    for row, (kind, phi, drop_rate, error_rate, seed) in tagged:
        if kind == "async":
            by_phi.setdefault(phi, []).append(row)
    for phi in PHIS:
        group = by_phi[phi]
        for drop_rate in DROP_RATES:
            for error_rate in ERROR_RATES:
                cells = [
                    row
                    for row, (kind, p, d, e, s) in tagged
                    if kind == "async" and p == phi
                    and d == drop_rate and e == error_rate
                ]
                table.add_row(
                    phi,
                    drop_rate,
                    error_rate,
                    round(sum(r.rounds_executed for r in cells) / len(cells), 1),
                    round(sum(r.metrics["coverage"] for r in cells) / len(cells), 3),
                    round(sum(r.solution_size for r in cells) / len(cells), 1),
                    sum(r.delayed_messages for r in cells),
                    sum(r.retried_messages for r in cells),
                    sum(1 for r in cells if r.stuck),
                    sum(r.metrics["violations"] for r in cells),
                )
    table.print()

    rows = {row.label: row for row, _ in tagged}

    # Degenerate mode: φ=0 async is the synchronous model, row for row.
    for drop_rate in DROP_RATES:
        for error_rate in ERROR_RATES:
            for seed in SEEDS:
                suffix = f"d={drop_rate}/e={error_rate}/s={seed}"
                async_row = rows[f"phi=0/{suffix}"]
                eager_row = rows[f"eager/{suffix}"]
                for column in ("rounds", "rounds_executed", "message_count",
                               "solution_size", "valid"):
                    assert getattr(async_row, column) == getattr(
                        eager_row, column
                    ), (suffix, column)
                assert async_row.delayed_messages == 0, suffix
                assert async_row.retried_messages == 0, suffix

    # Safety is unconditional for the *hardened* template: no
    # survivor-restricted violation anywhere in the hardened grid.  (The
    # composition templates below are measured precisely because they do
    # NOT have this property under delay.)
    for row, (kind, *coordinate) in tagged:
        if kind in ("async", "eager"):
            assert row.metrics["violations"] == 0, (kind, coordinate)

    # Delays bite at every φ>0 and only there; rounds degrade gracefully.
    assert all(row.delayed_messages == 0 for row in by_phi[0])
    mean_rounds = {}
    for phi in PHIS:
        group = by_phi[phi]
        if phi:
            assert sum(row.delayed_messages for row in group) > 0, phi
        mean_rounds[phi] = sum(r.rounds_executed for r in group) / len(group)
    for lighter, heavier in zip(PHIS, PHIS[1:]):
        assert mean_rounds[heavier] >= mean_rounds[lighter] - 0.5, (
            f"rounds fell from phi={lighter} to phi={heavier}"
        )
    # The φ=4 adversary must actually cost time, or the experiment
    # measures nothing.
    assert mean_rounds[PHIS[-1]] > mean_rounds[0]

    # Retransmission only exists where something was dropped to resend.
    for row, (kind, phi, drop_rate, _, _) in tagged:
        if kind == "async" and (phi == 0 or drop_rate == 0.0):
            assert row.retried_messages == 0 or drop_rate > 0.0

    # ------------------------------------------------------------------
    # Interleaved/Parallel template rows: same adversary, same claims.
    # ------------------------------------------------------------------
    extra_table = Table(
        "E27: composition templates under φ-bounded asynchrony",
        ["template", "phi", "err", "rounds", "coverage", "delayed", "stuck",
         "violations"],
    )
    for template in EXTRA_TEMPLATES:
        for phi in PHIS:
            for error_rate in ERROR_RATES:
                cells = [
                    row
                    for row, (kind, p, _, e, _) in tagged
                    if kind == template and p == phi and e == error_rate
                ]
                extra_table.add_row(
                    template.removeprefix("mis_"),
                    phi,
                    error_rate,
                    round(sum(r.rounds_executed for r in cells) / len(cells), 1),
                    round(sum(r.metrics["coverage"] for r in cells) / len(cells), 3),
                    sum(r.delayed_messages for r in cells),
                    sum(1 for r in cells if r.stuck),
                    sum(r.metrics["violations"] for r in cells),
                )
    extra_table.print()

    for template in EXTRA_TEMPLATES:
        # Degenerate mode holds for the compositions too, violations
        # included: φ=0 asynchrony *is* the synchronous model, where
        # these templates are safe.
        for error_rate in ERROR_RATES:
            for seed in SEEDS:
                suffix = f"e={error_rate}/s={seed}"
                async_row = rows[f"{template}/phi=0/{suffix}"]
                eager_row = rows[f"{template}/eager/{suffix}"]
                for column in ("rounds", "rounds_executed", "message_count",
                               "solution_size", "valid"):
                    assert getattr(async_row, column) == getattr(
                        eager_row, column
                    ), (template, suffix, column)
                assert async_row.delayed_messages == 0, (template, suffix)
                assert async_row.metrics["violations"] == 0, (template, suffix)
                assert eager_row.metrics["violations"] == 0, (template, suffix)
        # Delays bite at every φ>0 and rounds degrade, not collapse.
        template_rounds = {}
        for phi in PHIS:
            group = [
                row
                for row, (kind, p, _, _, _) in tagged
                if kind == template and p == phi
            ]
            if phi:
                assert sum(row.delayed_messages for row in group) > 0, (
                    template, phi
                )
            template_rounds[phi] = sum(
                r.rounds_executed for r in group
            ) / len(group)
        for lighter, heavier in zip(PHIS, PHIS[1:]):
            assert template_rounds[heavier] >= template_rounds[lighter] - 0.5, (
                f"{template} rounds fell from phi={lighter} to phi={heavier}"
            )
        assert template_rounds[PHIS[-1]] > template_rounds[0], template

    # The measured contrast that motivates the hardened variant: under
    # genuine delay (φ>0) the silence-based compositions DO violate
    # survivor-restricted independence, while the hardened grid above
    # stayed at zero everywhere.
    delayed_violations = sum(
        row.metrics["violations"]
        for row, (kind, phi, _, _, _) in tagged
        if kind in EXTRA_TEMPLATES and phi > 0
    )
    assert delayed_violations > 0, (
        "expected the non-hardened compositions to break under delay — "
        "if they no longer do, the hardened template's safety claim "
        "needs a new witness"
    )
