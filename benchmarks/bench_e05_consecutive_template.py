"""E5 — The Consecutive Template (Lemma 8, Section 7.2).

Paper claims: given R with node-computable bound r(n,Δ,d), the composed
algorithm has consistency c(n) = 3, is 2f(η)-degrading (f = the
measure-uniform bound, here η₁ via Lemma 1), and is robust with respect
to R (rounds ≤ c + 2r + 2c').
"""

from repro.bench import Table
from repro.bench.algorithms import mis_consecutive
from repro.core import run
from repro.core.analysis import sweep
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi
from repro.predictions import all_zeros_mis, noisy_predictions, perfect_predictions
from repro.problems import MIS


def _instances(graph):
    for rate in (0.0, 0.1, 0.3, 0.6, 1.0):
        for seed in (0, 1):
            yield (
                f"p={rate}/s={seed}",
                graph,
                noisy_predictions(MIS, graph, rate, seed=seed),
            )


def test_e05_consistency_degradation_robustness(once):
    def experiment():
        graph = connected_erdos_renyi(50, 0.06, seed=5)
        algorithm = mis_consecutive()

        consistency = run(
            algorithm, graph, perfect_predictions(MIS, graph, seed=1)
        ).rounds
        result = sweep(algorithm, MIS, _instances(graph), eta1)
        adversarial = run(algorithm, graph, all_zeros_mis(graph)).rounds

        table = Table(
            "E5: Consecutive Template (ER n=50) — Lemma 8",
            ["quantity", "measured", "paper bound"],
        )
        table.add_row("consistency rounds", consistency, 3)
        table.add_row(
            "max rounds over sweep", result.max_rounds(), "2*eta1 + 3 + O(1)"
        )
        table.add_row(
            "adversarial (all-zeros) rounds",
            adversarial,
            f"O(r(n)) = O({graph.n + 1})",
        )
        return table, (graph, consistency, result, adversarial)

    table, (graph, consistency, result, adversarial) = once(experiment)
    table.print()
    assert consistency <= 3
    assert result.all_valid
    # 2f(eta)-degrading with f(mu) = mu1 (Lemma 1) plus constant slack.
    assert not result.violations(lambda p: 2 * p.error + 3 + 2)
    # Robust w.r.t. R: c + 2(r + c') ceiling.
    assert adversarial <= 3 + 2 * (graph.n + 1) + 2 * 1 + 2
