"""E24 — End-to-end with a simulated ML oracle (Section 1's black box).

The framework's promise, exercised with a realistic predictor: an
ensemble that saw k solutions of perturbed instances.  Two measured
claims:

* a predictor targeting one *canonical* solution improves monotonically
  with data, driving η₁ → 0 and rounds → consistency;
* a predictor that averages many *different* valid solutions does not
  converge — solution multiplicity (the paper's Section 5 observation
  that correct predictions are not unique) makes naive ensembling
  counterproductive for these problems.
"""

from repro.bench import Table
from repro.bench.algorithms import mis_simple
from repro.core import run
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi
from repro.predictions import ensemble_predictions
from repro.problems import MIS


def test_e24_ensemble_quality_drives_rounds(once):
    def experiment():
        graph = connected_erdos_renyi(80, 0.04, seed=9)
        algorithm = mis_simple()
        table = Table(
            "E24: ensemble predictor (MIS, ER n=80) — consistent vs diverse",
            [
                "k",
                "consistent eta1",
                "consistent rounds",
                "diverse eta1",
                "diverse rounds",
            ],
        )
        rows = []
        for k in (0, 1, 3, 7, 15, 31):
            entries = {}
            for label, consistent in (("consistent", True), ("diverse", False)):
                predictions = ensemble_predictions(
                    MIS,
                    graph,
                    samples=k,
                    churn=3,
                    seed=4,
                    consistent_order=consistent,
                )
                result = run(algorithm, graph, predictions)
                assert MIS.is_solution(graph, result.outputs)
                entries[label] = (eta1(graph, predictions), result.rounds)
            table.add_row(
                k,
                entries["consistent"][0],
                entries["consistent"][1],
                entries["diverse"][0],
                entries["diverse"][1],
            )
            rows.append((k, entries["consistent"], entries["diverse"]))
        return table, rows

    table, rows = once(experiment)
    table.print()
    by_k = {k: (cons, div) for k, cons, div in rows}
    # Untrained predictor: maximal error, still solved within eta1+3.
    assert by_k[0][0][1] <= by_k[0][0][0] + 3
    # The consistent predictor converges: error vanishes, consistency met.
    assert by_k[31][0][0] == 0
    assert by_k[31][0][1] <= 3
    # The diverse ensemble drifts: more samples, more error.
    assert by_k[31][1][0] > by_k[1][1][0]
    # Throughout, the degradation bound holds pointwise.
    for k, cons, div in rows:
        assert cons[1] <= cons[0] + 3
        assert div[1] <= div[0] + 3
