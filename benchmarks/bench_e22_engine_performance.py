"""E22 — Simulator throughput (engineering, not a paper claim).

Wall-clock benchmarks of the engine itself, timed properly (multiple
pytest-benchmark rounds): how fast the simulator pushes node-rounds for
the workhorse algorithms.  These are the only benchmarks in the suite
where the *time* column is the result; everything else measures round
counts.

Each workload is benchmarked in the default mode and in ``fast=True``
mode (which skips per-message bit-size accounting); the fast variants
also assert that fast mode changes *nothing observable* — same rounds,
same outputs, same message count — so the speedup column is free of
semantic drift.  The measured before/after table lives in
EXPERIMENTS.md.

The profiled variants time the same workloads under
``run(..., profile=True)`` (the engine's split-phase round path, see
docs/OBSERVABILITY.md) and assert the same observational-identity
contract, so the profiling overhead column is honest too.

The topology micro-benchmarks at the bottom compare the two adjacency
representations directly — dict-of-sets vs the shared
:class:`~repro.graphs.csr.CSRTopology` — on construction and on a full
neighbor sweep, so the CSR core's cost model is measured and not
asserted from folklore.
"""

from repro.algorithms.mis import GreedyMISAlgorithm, LubyMISAlgorithm
from repro.bench.algorithms import mis_parallel
from repro.core import run
from repro.graphs import CSRTopology, grid2d, random_regular
from repro.predictions import noisy_predictions
from repro.problems import MIS


def test_e22_greedy_on_large_grid(benchmark):
    graph = grid2d(40, 40)  # 1600 nodes

    def execute():
        return run(GreedyMISAlgorithm(), graph)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)


def test_e22_greedy_on_large_grid_fast(benchmark):
    graph = grid2d(40, 40)
    reference = run(GreedyMISAlgorithm(), graph)

    def execute():
        return run(GreedyMISAlgorithm(), graph, fast=True)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)
    # fast mode is observationally identical up to bit accounting
    assert result.rounds == reference.rounds
    assert result.outputs == reference.outputs
    assert result.message_count == reference.message_count


def test_e22_luby_on_regular_graph(benchmark):
    graph = random_regular(1000, 4, seed=1)

    def execute():
        return run(LubyMISAlgorithm(), graph, seed=1)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)


def test_e22_luby_on_regular_graph_fast(benchmark):
    graph = random_regular(1000, 4, seed=1)
    reference = run(LubyMISAlgorithm(), graph, seed=1)

    def execute():
        return run(LubyMISAlgorithm(), graph, seed=1, fast=True)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)
    assert result.rounds == reference.rounds
    assert result.outputs == reference.outputs
    assert result.message_count == reference.message_count


def test_e22_parallel_template_medium(benchmark):
    graph = random_regular(200, 4, seed=2)
    predictions = noisy_predictions(MIS, graph, 0.3, seed=2)
    algorithm = mis_parallel()

    def execute():
        return run(algorithm, graph, predictions)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)


def test_e22_parallel_template_medium_fast(benchmark):
    graph = random_regular(200, 4, seed=2)
    predictions = noisy_predictions(MIS, graph, 0.3, seed=2)
    reference = run(mis_parallel(), graph, predictions)

    def execute():
        return run(mis_parallel(), graph, predictions, fast=True)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)
    assert result.rounds == reference.rounds
    assert result.outputs == reference.outputs
    assert result.message_count == reference.message_count


def test_e22_greedy_on_large_grid_profiled(benchmark):
    """Profiling cost on the grid workload — and proof the split-phase
    profiled loop changes nothing observable."""
    graph = grid2d(40, 40)
    reference = run(GreedyMISAlgorithm(), graph)

    def execute():
        return run(GreedyMISAlgorithm(), graph, profile=True)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)
    assert result.rounds == reference.rounds
    assert result.outputs == reference.outputs
    assert result.message_count == reference.message_count
    assert len(result.profile) == result.rounds_executed
    assert sum(result.profile.message_counts()) == result.message_count


def test_e22_luby_on_regular_graph_profiled(benchmark):
    graph = random_regular(1000, 4, seed=1)
    reference = run(LubyMISAlgorithm(), graph, seed=1)

    def execute():
        return run(LubyMISAlgorithm(), graph, seed=1, profile=True)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)
    assert result.rounds == reference.rounds
    assert result.outputs == reference.outputs
    assert result.message_count == reference.message_count
    assert len(result.profile) == result.rounds_executed


def test_e22_sweep_throughput(benchmark):
    """Executor overhead: a 12-cell grid through the serial backend
    should cost barely more than the 12 underlying runs (the artifact
    cache builds each graph and prediction mapping once)."""
    from repro.exec import GraphSpec, Sweep

    def execute():
        sweep = Sweep(name="e22-throughput", base_seed=5)
        sweep.add_grid(
            {
                "grid": GraphSpec.of("grid2d", 12, 12),
                "regular": GraphSpec.of("random_regular", 144, 4, seed=3),
            },
            {"luby": "mis_parallel", "simple": "mis_simple"},
            predictions={"zeros": "all_zeros_mis"},
            seeds=(0, 1, 2),
            problem="mis",
        )
        return sweep.run("serial")

    result = benchmark(execute)
    assert len(result) == 12
    assert result.all_valid
    telemetry = result.telemetry()
    assert telemetry["node_rounds_per_sec"] > 0
    assert telemetry["backend"] == "serial"


# ----------------------------------------------------------------------
# Topology micro-benchmarks: dict-of-sets vs the shared CSR core
# ----------------------------------------------------------------------

def _raw_adjacency(rows, cols):
    """A plain dict-of-sets grid adjacency, built without DistGraph so
    both representations start from the same raw material."""
    def node(r, c):
        return r * cols + c + 1

    adjacency = {node(r, c): set() for r in range(rows) for c in range(cols)}
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                adjacency[node(r, c)].add(node(r, c + 1))
                adjacency[node(r, c + 1)].add(node(r, c))
            if r + 1 < rows:
                adjacency[node(r, c)].add(node(r + 1, c))
                adjacency[node(r + 1, c)].add(node(r, c))
    return adjacency


def test_e22_topology_dict_construction(benchmark):
    """Baseline: building the dict-of-sets adjacency itself."""
    result = benchmark(_raw_adjacency, 40, 40)
    assert len(result) == 1600


def test_e22_topology_csr_construction(benchmark):
    """CSR interning + row packing on top of an existing adjacency —
    the one-time cost every DistGraph pays at construction."""
    adjacency = _raw_adjacency(40, 40)

    result = benchmark(CSRTopology.from_adjacency, adjacency)
    assert result.n == 1600
    assert result.m == sum(len(v) for v in adjacency.values()) // 2


def test_e22_topology_dict_neighbor_sweep(benchmark):
    """Full neighbor iteration through the dict-of-sets adjacency."""
    adjacency = _raw_adjacency(40, 40)

    def sweep():
        total = 0
        for node in adjacency:
            for other in adjacency[node]:
                total += other
        return total

    expected = sweep()
    assert benchmark(sweep) == expected


def test_e22_topology_csr_neighbor_sweep(benchmark):
    """The same sweep through CSR rows (index-based hot-loop API)."""
    topology = CSRTopology.from_adjacency(_raw_adjacency(40, 40))
    ids = topology.ids

    def sweep():
        total = 0
        for _, row in topology.iter_rows():
            for other in row:
                total += ids[other]
        return total

    def dict_sweep():
        adjacency = _raw_adjacency(40, 40)
        return sum(other for node in adjacency for other in adjacency[node])

    expected = dict_sweep()
    assert benchmark(sweep) == expected


# ----------------------------------------------------------------------
# Pool-boundary serialization (what the process backend ships per cell)
# ----------------------------------------------------------------------
def test_e22_pickle_bytes_per_cell_flat(benchmark):
    """Flat serialization of a literal-graph work item — the bytes every
    chunk dispatch shipped per cell before the shared-memory store."""
    import pickle

    from repro.core import RunConfig
    from repro.exec import GraphSpec, Sweep

    sweep = Sweep(name="e22")
    sweep.add(
        "cell", GraphSpec.literal(random_regular(1600, 4, seed=1)), mis_parallel
    )
    item = ("cell", 0, sweep.cells[0], 1, False, False)

    size = benchmark(lambda: len(pickle.dumps(item, pickle.HIGHEST_PROTOCOL)))
    assert size > 8 * 1600  # the CSR buffers dominate a flat item


def test_e22_pickle_bytes_per_cell_shared(benchmark):
    """The same item while a SharedCSRStore is active: the topology
    reduces to a ~100-byte segment handle, so per-cell pool traffic is
    spec overhead, independent of n."""
    import pickle

    from repro.exec import GraphSpec, Sweep
    from repro.shard import SharedCSRStore

    sweep = Sweep(name="e22")
    graph = random_regular(1600, 4, seed=1)
    sweep.add("cell", GraphSpec.literal(graph), mis_parallel)
    item = ("cell", 0, sweep.cells[0], 1, False, False)
    flat = len(pickle.dumps(item, pickle.HIGHEST_PROTOCOL))

    with SharedCSRStore() as store:
        store.publish(graph.csr)  # first publish paid outside the loop
        size = benchmark(
            lambda: len(pickle.dumps(item, pickle.HIGHEST_PROTOCOL))
        )
    assert size * 5 <= flat  # the handle path ships >= 5x fewer bytes
