"""E22 — Simulator throughput (engineering, not a paper claim).

Wall-clock benchmarks of the engine itself, timed properly (multiple
pytest-benchmark rounds): how fast the simulator pushes node-rounds for
the workhorse algorithms.  These are the only benchmarks in the suite
where the *time* column is the result; everything else measures round
counts.
"""

from repro.algorithms.mis import GreedyMISAlgorithm, LubyMISAlgorithm
from repro.bench.algorithms import mis_parallel
from repro.core import run
from repro.graphs import grid2d, random_regular
from repro.predictions import noisy_predictions
from repro.problems import MIS


def test_e22_greedy_on_large_grid(benchmark):
    graph = grid2d(40, 40)  # 1600 nodes

    def execute():
        return run(GreedyMISAlgorithm(), graph)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)


def test_e22_luby_on_regular_graph(benchmark):
    graph = random_regular(1000, 4, seed=1)

    def execute():
        return run(LubyMISAlgorithm(), graph, seed=1)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)


def test_e22_parallel_template_medium(benchmark):
    graph = random_regular(200, 4, seed=2)
    predictions = noisy_predictions(MIS, graph, 0.3, seed=2)
    algorithm = mis_parallel()

    def execute():
        return run(algorithm, graph, predictions)

    result = benchmark(execute)
    assert MIS.is_solution(graph, result.outputs)
