"""E10 — Rooted trees (Section 9.2 + Corollary 15).

Paper claims:

* Simple(Rooted-Tree Initialization, Algorithm 6) is consistent (3 rounds
  on correct predictions) and finishes within ⌈η_t/2⌉ + 5 rounds;
* the Parallel Template with the O(log* d) 3-coloring reference finishes
  within min{⌈η_t/2⌉ + 5, O(log* d)} rounds (Corollary 15);
* the directed-line 0-0-1 pattern has η₁ = 3k but η_t = 2, and the
  rooted-tree initialization finishes it by round 2.
"""

from repro.algorithms.mis.rooted_tree import tree_coloring_round_bound
from repro.bench import Table
from repro.bench.algorithms import mis_rooted_parallel, mis_rooted_simple
from repro.core import run
from repro.errors import eta1, eta_t
from repro.graphs import directed_line, random_rooted_tree
from repro.predictions import (
    directed_line_pattern,
    noisy_predictions,
    perfect_predictions,
)
from repro.problems import MIS


def test_e10_simple_template_eta_t_bound(once):
    def experiment():
        algorithm = mis_rooted_simple()
        table = Table(
            "E10: rooted trees — Simple(rooted init, Algorithm 6) vs eta_t",
            ["tree", "rate", "eta_t", "rounds", "bound ceil(eta_t/2)+5"],
        )
        failures = []
        for seed in (1, 2, 3):
            graph = random_rooted_tree(80, seed=seed)
            for rate in (0.0, 0.2, 0.5, 1.0):
                predictions = noisy_predictions(MIS, graph, rate, seed=seed)
                # One seed threads through generator, predictions AND the
                # run, so each cell is reproducible in isolation.
                result = run(algorithm, graph, predictions, seed=seed)
                error = eta_t(graph, predictions)
                bound = (error + 1) // 2 + 5
                table.add_row(graph.name, rate, error, result.rounds, bound)
                if not MIS.is_solution(graph, result.outputs):
                    failures.append((seed, rate, "invalid"))
                if result.rounds > bound:
                    failures.append((seed, rate, result.rounds, bound))
        return table, failures

    table, failures = once(experiment)
    table.print()
    assert not failures, failures


def test_e10_corollary15_parallel(once):
    def experiment():
        algorithm = mis_rooted_parallel()
        table = Table(
            "E10 (Corollary 15): Parallel rooted-tree MIS",
            ["tree n", "rate", "eta_t", "rounds", "min bound"],
        )
        failures = []
        for n in (60, 120):
            graph = random_rooted_tree(n, seed=7)
            cap = tree_coloring_round_bound(graph.d) + 12
            for rate in (0.0, 0.3, 0.7):
                predictions = noisy_predictions(MIS, graph, rate, seed=3)
                result = run(algorithm, graph, predictions)
                error = eta_t(graph, predictions)
                bound = min((error + 1) // 2 + 7, cap)
                table.add_row(n, rate, error, result.rounds, bound)
                if not MIS.is_solution(graph, result.outputs):
                    failures.append((n, rate, "invalid"))
                if result.rounds > bound:
                    failures.append((n, rate, result.rounds, bound))
        return table, failures

    table, failures = once(experiment)
    table.print()
    assert not failures, failures


def test_e10_directed_line_example(once):
    """The Section 9.2 example: η₁ = 3k, η_t = 2, resolved by round 2."""

    def experiment():
        algorithm = mis_rooted_simple()
        table = Table(
            "E10: directed line 0-0-1 pattern",
            ["3k", "eta1", "eta_t", "rounds", "valid"],
        )
        rows = []
        for k in (10, 20, 40):
            graph = directed_line(3 * k)
            predictions = directed_line_pattern(graph)
            result = run(algorithm, graph, predictions)
            valid = MIS.is_solution(graph, result.outputs)
            table.add_row(
                3 * k,
                eta1(graph, predictions),
                eta_t(graph, predictions),
                result.rounds,
                valid,
            )
            rows.append((3 * k, eta1(graph, predictions), result.rounds, valid))
        return table, rows

    table, rows = once(experiment)
    table.print()
    for n, e1, rounds, valid in rows:
        assert valid
        assert e1 == n
        assert rounds <= 3
