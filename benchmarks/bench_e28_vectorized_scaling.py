"""E28 — Vectorized whole-frontier kernels (engineering, not a paper claim).

The interpreted engine pays Python-level dispatch per node per round:
even the quiescent schedule, which skips idle nodes, walks the wake-set
one context at a time.  ``schedule="vectorized"`` replaces the whole
round loop with compiled NumPy kernels over the CSR buffers — one array
pass per round for the entire frontier — while staying **bit-identical**
to the interpreted engine (same outputs, rounds, message counts, bit
accounting; differentially fuzzed in ``tests/test_vectorized.py``).

Every workload here asserts that identity before trusting a timing, then
asserts the speedup floor over the quiescent schedule and finally runs
the headline scale: greedy MIS on a random tree with a **million nodes**,
end to end, through the same ``run()`` API as every other experiment.

Set ``REPRO_E28_N`` to scale the workloads (default 1_000_000; CI uses
10^5 to keep the job fast — the speedup grows with n, so the floor holds
a fortiori at full size).  The committed baseline artifact is
``benchmarks/BENCH_e28_vectorized.json`` (see docs/PERFORMANCE.md).
"""

import os
import time

from repro.algorithms.coloring import PaletteGreedyColoringAlgorithm
from repro.algorithms.matching import GreedyMatchingAlgorithm
from repro.algorithms.mis import GreedyMISAlgorithm
from repro.core import ExecutionPolicy, run
from repro.graphs import erdos_renyi, random_tree
from repro.problems import MATCHING, MIS, VERTEX_COLORING
from repro.simulator import SyncEngine

#: Headline scale of the end-to-end run (nodes).
N = int(os.environ.get("REPRO_E28_N", "1000000"))

#: Size of the vectorized-vs-quiescent timing duel.
DUEL_N = min(N, 100_000)

#: Round-loop speedup floor over ``schedule="quiescent"`` at DUEL_N.
MIN_SPEEDUP = 10.0

VECTORIZED = ExecutionPolicy(schedule="vectorized")


def _timed_run(engine):
    """Time ``engine.run()`` alone — setup/graph construction excluded."""
    start = time.perf_counter()
    result = engine.run()
    return result, time.perf_counter() - start


def _identical(a, b):
    assert a.outputs == b.outputs
    assert a.rounds == b.rounds
    assert a.rounds_executed == b.rounds_executed
    assert a.message_count == b.message_count
    assert a.total_bits == b.total_bits
    assert a.max_message_bits == b.max_message_bits


def test_e28_identity_smoke(once):
    """All three kernel families reproduce the interpreted engine bit
    for bit on a dense and a sparse instance before any timing runs."""

    def execute():
        pairs = []
        for graph in (erdos_renyi(2000, 0.01, seed=7), random_tree(2000, seed=7)):
            for problem, algorithm in (
                (MIS, GreedyMISAlgorithm),
                (MATCHING, GreedyMatchingAlgorithm),
                (VERTEX_COLORING, PaletteGreedyColoringAlgorithm),
            ):
                interpreted = run(algorithm(), graph)
                vectorized = run(algorithm(), graph, policy=VECTORIZED)
                pairs.append((problem, graph, interpreted, vectorized))
        return pairs

    for problem, graph, interpreted, vectorized in once(execute):
        _identical(interpreted, vectorized)
        assert not problem.verify_solution(graph, vectorized.outputs)


def test_e28_round_loop_speedup(once):
    """The tentpole number: the vectorized round loop is >= 10x faster
    than the interpreted quiescent schedule at n=10^5 (engine.run() only,
    identical results asserted first)."""
    graph = random_tree(DUEL_N, seed=1)

    def _engine(schedule):
        return SyncEngine(
            graph, lambda node: GreedyMISAlgorithm().build_program(),
            fast=True, schedule=schedule,
        )

    def execute():
        # Best of two trials per side, fresh engines each: the first
        # vectorized run in a process pays numpy/allocator first-touch
        # costs that are not the round loop being measured.
        quiescent_s = vectorized_s = float("inf")
        for _ in range(2):
            quiescent, elapsed = _timed_run(_engine("quiescent"))
            quiescent_s = min(quiescent_s, elapsed)
            vectorized, elapsed = _timed_run(_engine("vectorized"))
            vectorized_s = min(vectorized_s, elapsed)
        return quiescent, quiescent_s, vectorized, vectorized_s

    quiescent, quiescent_s, vectorized, vectorized_s = once(execute)
    _identical(quiescent, vectorized)
    assert vectorized.kernel == "greedy-mis"
    speedup = quiescent_s / vectorized_s if vectorized_s else float("inf")
    print(
        f"\nE28 greedy-mis/random-tree: n={graph.n} rounds={vectorized.rounds} "
        f"quiescent={quiescent_s:.2f}s vectorized={vectorized_s:.3f}s "
        f"speedup={speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x "
        f"floor (quiescent {quiescent_s:.2f}s, vectorized {vectorized_s:.3f}s)"
    )


def test_e28_million_node_scaling(once):
    """The headline scale: greedy MIS on a random tree at REPRO_E28_N
    (10^6 by default) end to end through run(), with a scaling table."""
    sizes = [max(N // 100, 1000), max(N // 10, 10_000), N]

    def execute():
        rows = []
        for n in sizes:
            graph = random_tree(n, seed=2)
            start = time.perf_counter()
            result = run(GreedyMISAlgorithm(), graph, fast=True,
                         policy=VECTORIZED)
            elapsed = time.perf_counter() - start
            rows.append((n, graph, result, elapsed))
        return rows

    rows = once(execute)
    print(f"\nE28 scaling (greedy-mis/random-tree, schedule=vectorized):")
    print(f"{'n':>9}  {'rounds':>6}  {'messages':>9}  {'run s':>8}  {'nodes/s':>10}")
    for n, graph, result, elapsed in rows:
        print(
            f"{n:>9}  {result.rounds:>6}  {result.message_count:>9}  "
            f"{elapsed:>8.3f}  {n / elapsed if elapsed else 0:>10.0f}"
        )
    for n, graph, result, elapsed in rows:
        assert result.kernel == "greedy-mis"
        assert result.all_terminated
        assert not MIS.verify_solution(graph, result.outputs)
