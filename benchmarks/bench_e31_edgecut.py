"""E31 — Edge-cut sharding and boundary-message exchange (engineering).

Component sharding (E30) cannot touch a *connected* graph: one component
means one shard means no parallel decomposition.  ``shard="edgecut"``
removes that restriction by block-partitioning the identifier space and
exchanging cut-crossing messages through a per-round barrier — the
result must stay **bit-identical** to the unsharded run (same
adjudication order, same CONGEST bit accounting, same failure sites; see
``tests/test_edgecut.py`` for the exception-parity fuzz).

The workload is a ``preorder_kary_tree``: a complete 10-ary tree whose
ids are assigned in DFS preorder, so every subtree is one contiguous id
block.  Two properties make it the edge-cut headline family:

* the block partition cuts only ~``shards × height`` parent edges, so
  boundary traffic measures the *cut*, not the graph — the ceiling
  asserted below is a few kilobytes against a multi-gigabyte instance;
* every parent id precedes its children's, so greedy MIS adjudication
  sweeps the tree in ~``height`` waves regardless of ``n`` — the run
  finishes in ~16 rounds at n = 11,111,111 where a line graph would
  need 10^7.

Every workload asserts the sharded ≡ unsharded identity at a reduced n
before trusting a byte count, then the headline demonstrates a connected
n≈10^7 instance end to end with the boundary-bytes ceiling enforced.

Set ``REPRO_E31_N`` to scale the headline run (default 11_111_111, a
height-7 tree; CI uses a reduced n — the boundary ceiling holds a
fortiori at full size, since the cut grows with ``log n`` while the
graph grows linearly).  The committed baseline artifact is
``benchmarks/BENCH_e31_edgecut.json`` (see docs/PERFORMANCE.md).
"""

import os

from repro.core import ExecutionPolicy, RunConfig
from repro.exec import GraphSpec, Sweep
from repro.graphs import preorder_kary_tree

#: Headline scale of the edge-cut measurement (nodes; the build rounds
#: down to the largest complete 10-ary tree that fits).
N = int(os.environ.get("REPRO_E31_N", "11111111"))

ARITY = 10

#: Shard count of the headline run (>= 2: a real cut, a real barrier).
SHARDS = 2

#: Absolute per-cell boundary-bytes ceiling at the headline scale.  The
#: cut is ~SHARDS * height edges and each carries a few id-sized
#: messages per wave, so genuine boundary traffic is a few KB; crossing
#: this ceiling means whole-frontier state is leaking across the cut.
BOUNDARY_CEILING_BYTES = 262_144

#: Boundary bytes must grow with the cut (~height, i.e. ~log n), not
#: with n.  Growing the tree 10x may multiply boundary traffic by at
#: most this factor — O(n) leakage would show up as ~10x.
MAX_BOUNDARY_GROWTH = 4.0


def _height_for(n_target):
    height = 1
    while ((ARITY ** (height + 2) - 1) // (ARITY - 1)) <= n_target:
        height += 1
    return height


def _tree(n_target):
    return preorder_kary_tree(ARITY, _height_for(n_target))


def _sweep(graph, *, shard=None, schedule="quiescent", fast=False, seeds=(11,)):
    sweep = Sweep(name="e31", base_seed=7)
    policy = ExecutionPolicy(schedule=schedule, shard=shard)
    config = RunConfig(fast=fast, policy=policy)
    spec = GraphSpec.literal(graph)
    for seed in seeds:
        sweep.add(
            f"greedy-s{seed}",
            spec,
            "greedy_mis_reference",
            problem="mis",
            seed=seed,
            config=config,
        )
    return sweep


def test_e31_identity_fuzz(once):
    """Edge-cut runs are bit-identical to unsharded runs — across
    schedules, shard counts and backends — before any byte counting."""
    graph = _tree(min(N, 20_000))

    def execute():
        outcomes = []
        for schedule in ("eager", "quiescent"):
            reference = _sweep(graph, schedule=schedule).run("serial")
            for jobs in (2, 4):
                sharded = _sweep(
                    graph, shard="edgecut", schedule=schedule
                ).run("serial", jobs=jobs)
                outcomes.append((schedule, jobs, sharded, reference))
        process = _sweep(graph, shard="edgecut").run("process", jobs=2)
        outcomes.append(("quiescent/process", 2, process, _sweep(graph).run("serial")))
        return outcomes

    for schedule, jobs, sharded, reference in once(execute):
        assert sharded.equivalent_to(reference), (
            f"edge-cut ({schedule}, jobs={jobs}) diverged from unsharded"
        )
        assert all(row.valid for row in sharded.rows)
        for row in sharded.rows:
            assert row.shards == jobs
            assert row.boundary_msgs > 0
            assert row.boundary_bytes > 0


def test_e31_boundary_bytes_track_the_cut(once):
    """Boundary traffic measures the cut (~height edges), not the graph:
    a 10x larger tree may not multiply boundary bytes by more than
    MAX_BOUNDARY_GROWTH (O(n) leakage would show ~10x)."""
    small = _tree(min(N, 1_500))
    large = _tree(min(N, 15_000))
    assert large.n >= 10 * small.n - ARITY

    def execute():
        small_run = _sweep(small, shard="edgecut").run("serial", jobs=SHARDS)
        large_run = _sweep(large, shard="edgecut").run("serial", jobs=SHARDS)
        return small_run, large_run

    small_run, large_run = once(execute)
    small_bytes = small_run.rows[0].boundary_bytes
    large_bytes = large_run.rows[0].boundary_bytes
    growth = large_bytes / small_bytes
    print(
        f"\nE31 cut-tracking: n={small.n}->{large.n} boundary "
        f"{small_bytes}B->{large_bytes}B growth={growth:.2f}x"
    )
    assert growth <= MAX_BOUNDARY_GROWTH, (
        f"boundary bytes grew {growth:.1f}x for a 10x larger tree — "
        "whole-frontier state is leaking across the cut"
    )


def test_e31_headline_scale(once):
    """The tentpole number: a *connected* instance at the headline scale
    runs end to end under shard='edgecut', valid and round-bounded, with
    per-cell boundary bytes recorded and under the absolute ceiling."""
    graph = _tree(N)
    height = _height_for(N)

    def execute():
        return _sweep(graph, shard="edgecut", fast=True).run(
            "serial", jobs=SHARDS
        )

    result = once(execute)
    assert all(row.valid for row in result.rows)
    telemetry = result.telemetry()
    for row in result.rows:
        print(
            f"\nE31 {row.label}: n={graph.n} shards={row.shards} "
            f"rounds={row.rounds} boundary_msgs={row.boundary_msgs} "
            f"boundary_bytes={row.boundary_bytes}B "
            f"elapsed={row.elapsed:.2f}s "
            f"({telemetry['node_rounds_per_sec']:.0f} node-rounds/s)"
        )
        assert row.shards == SHARDS
        # Greedy MIS sweeps the tree in ~2 waves per level.
        assert height <= row.rounds <= 3 * height + 4
        assert row.boundary_msgs > 0
        assert row.boundary_bytes > 0
        assert row.boundary_bytes <= BOUNDARY_CEILING_BYTES, (
            f"boundary bytes {row.boundary_bytes} above the "
            f"{BOUNDARY_CEILING_BYTES} ceiling — whole-frontier state is "
            "crossing the cut"
        )
    assert telemetry["boundary_msgs_total"] == sum(
        row.boundary_msgs for row in result.rows
    )
    assert telemetry["boundary_bytes_total"] == sum(
        row.boundary_bytes for row in result.rows
    )
