"""E1 — Consistency of every initialization algorithm (Section 4).

Paper claim: with correct predictions (η = 0) each problem's algorithm
with predictions terminates within its initialization algorithm's round
bound — 3 rounds for MIS, 2 for Maximal Matching, 2 for (Δ+1)-Vertex
Coloring, 1 for (2Δ−1)-Edge Coloring — and outputs the predictions.
"""

from repro.bench import Table, standard_graph_suite
from repro.bench.algorithms import (
    coloring_simple,
    edge_coloring_simple,
    matching_simple,
    mis_simple,
)
from repro.core import run
from repro.predictions import perfect_predictions
from repro.problems import EDGE_COLORING, MATCHING, MIS, VERTEX_COLORING

CASES = [
    ("mis", MIS, mis_simple, 3),
    ("matching", MATCHING, matching_simple, 2),
    ("vertex-coloring", VERTEX_COLORING, coloring_simple, 2),
    ("edge-coloring", EDGE_COLORING, edge_coloring_simple, 1),
]


def test_e01_consistency(once):
    def experiment():
        table = Table(
            "E1: consistency (max rounds over graph suite, eta = 0)",
            ["problem", "paper bound c(n)", "measured max rounds", "all valid"],
        )
        failures = []
        for name, problem, factory, bound in CASES:
            algorithm = factory()
            worst = 0
            valid = True
            for graph in standard_graph_suite():
                predictions = perfect_predictions(problem, graph, seed=1)
                result = run(algorithm, graph, predictions)
                worst = max(worst, result.rounds)
                valid &= problem.is_solution(graph, result.outputs)
            table.add_row(name, bound, worst, valid)
            if worst > bound or not valid:
                failures.append(name)
        return table, failures

    table, failures = once(experiment)
    table.print()
    assert not failures, failures
