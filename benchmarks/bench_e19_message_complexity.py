"""E19 — Message and bandwidth accounting (Section 2's models).

The paper's performance measure is rounds, but it distinguishes LOCAL
from CONGEST (O(log n)-bit messages).  This experiment pins down each
algorithm's communication profile: messages per node per round is O(deg),
and every algorithm except the clustering reference stays within the
CONGEST width — with good predictions the *total* message count is also
dramatically smaller (prediction quality saves bandwidth, not just time).
"""

from repro.bench import Table
from repro.bench.algorithms import mis_parallel, mis_simple
from repro.core import run
from repro.graphs import random_regular
from repro.predictions import noisy_predictions, perfect_predictions
from repro.problems import MIS
from repro.simulator.models import CONGEST


def test_e19_message_profile(once):
    def experiment():
        graph = random_regular(48, 4, seed=5)
        budget = CONGEST.bandwidth_bits(graph.n)
        table = Table(
            "E19: message complexity (4-regular n=48)",
            [
                "algorithm",
                "noise",
                "rounds",
                "messages",
                "total bits",
                "max msg bits",
                "CONGEST-ok",
            ],
        )
        rows = []
        for name, factory in (("simple", mis_simple), ("parallel", mis_parallel)):
            algorithm = factory()
            for rate in (0.0, 0.3, 1.0):
                predictions = (
                    perfect_predictions(MIS, graph, seed=1)
                    if rate == 0.0
                    else noisy_predictions(MIS, graph, rate, seed=1)
                )
                result = run(algorithm, graph, predictions)
                assert MIS.is_solution(graph, result.outputs)
                ok = result.max_message_bits <= budget
                table.add_row(
                    name,
                    rate,
                    result.rounds,
                    result.message_count,
                    result.total_bits,
                    result.max_message_bits,
                    ok,
                )
                rows.append((name, rate, result.message_count, ok))
        return table, rows

    table, rows = once(experiment)
    table.print()
    for name, rate, messages, congest_ok in rows:
        assert congest_ok, (name, rate)
    # Message totals stay within a constant factor of each other across
    # prediction qualities: every algorithm's communication is dominated
    # by the O(1) full prediction/color exchanges, not by the error.
    by_algorithm = {}
    for name, rate, messages, _ in rows:
        by_algorithm.setdefault(name, {})[rate] = messages
    for name, series in by_algorithm.items():
        assert max(series.values()) <= 2 * min(series.values()), name


def test_e19_messages_scale_with_edges_not_n_squared(once):
    def experiment():
        table = Table(
            "E19: Simple Template messages vs edges (perfect predictions)",
            ["n", "edges", "messages", "messages/edge"],
        )
        rows = []
        for n in (24, 48, 96):
            graph = random_regular(n, 4, seed=2)
            predictions = perfect_predictions(MIS, graph, seed=1)
            result = run(mis_simple(), graph, predictions)
            ratio = result.message_count / graph.num_edges
            table.add_row(n, graph.num_edges, result.message_count, f"{ratio:.2f}")
            rows.append(ratio)
        return table, rows

    table, rows = once(experiment)
    table.print()
    # Constant rounds + O(deg) messages per round: messages/edge is flat.
    assert max(rows) - min(rows) < 1.0
