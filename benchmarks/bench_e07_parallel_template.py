"""E7 — The Parallel Template (Lemma 11 + Corollary 12, Section 7.4).

Paper claims: running the Greedy MIS Algorithm in parallel with the
fault-tolerant coloring gives consistency 3 and round complexity
``min{η₂ + 4, O(Δ + log* d)}`` — i.e. η₂-degradation *without* the
factor 2 of the sequential templates, plus a robustness cap independent
of η.  (Our substituted part-1 bound is O(Δ² + log* d); see DESIGN.md.)
"""

from repro.bench import Table
from repro.bench.algorithms import mis_parallel
from repro.core import run
from repro.core.analysis import sweep
from repro.errors import eta2
from repro.graphs import clique, random_regular, star
from repro.predictions import all_ones_mis, all_zeros_mis, noisy_predictions, perfect_predictions
from repro.problems import MIS


def test_e07_eta2_degradation_without_factor_two(once):
    def experiment():
        graph = random_regular(42, 3, seed=6)
        algorithm = mis_parallel()
        consistency = run(
            algorithm, graph, perfect_predictions(MIS, graph, seed=4)
        ).rounds

        def instances():
            for rate in (0.05, 0.15, 0.3, 0.6, 1.0):
                for seed in (0, 1, 2):
                    yield (
                        f"p={rate}/s={seed}",
                        graph,
                        noisy_predictions(MIS, graph, rate, seed=seed),
                    )

        result = sweep(algorithm, MIS, instances(), eta2)
        table = Table(
            "E7: Parallel Template rounds vs eta2 (3-regular n=42)",
            ["eta2", "max rounds", "bound eta2+4+O(1)"],
        )
        for error, rounds in result.rounds_by_error():
            table.add_row(error, rounds, error + 5)
        return table, (consistency, result)

    table, (consistency, result) = once(experiment)
    table.print()
    assert consistency <= 3
    assert result.all_valid
    assert not result.violations(lambda p: p.error + 3 + 2)


def test_e07_robustness_cap_independent_of_eta(once):
    """With maximally bad predictions, rounds stay under the reference cap
    (which depends on Δ and d only, not on n or η)."""

    def experiment():
        from repro.algorithms.mis import ColoringMISReference

        reference = ColoringMISReference()
        algorithm = mis_parallel()
        table = Table(
            "E7: adversarial predictions vs reference cap",
            ["graph", "predictions", "rounds", "cap c+r1+r2+O(1)"],
        )
        rows = []
        for graph, label, predictions in [
            (random_regular(48, 4, seed=1), "all-zeros", None),
            (random_regular(48, 4, seed=1), "all-ones", None),
        ]:
            predictions = (
                all_zeros_mis(graph) if label == "all-zeros" else all_ones_mis(graph)
            )
            cap = (
                3
                + reference.part1_bound(graph.n, graph.delta, graph.d)
                + 2
                + reference.part2_bound(graph.n, graph.delta, graph.d)
            )
            result = run(algorithm, graph, predictions)
            table.add_row(graph.name, label, result.rounds, cap)
            rows.append((result.rounds, cap))
        return table, rows

    table, rows = once(experiment)
    table.print()
    for rounds, cap in rows:
        assert rounds <= cap


def test_e07_small_eta2_families_beat_the_cap(once):
    """Cliques and stars with all-ones predictions have η₂ = 2: the
    parallel algorithm finishes in O(1) rounds regardless of size."""

    def experiment():
        algorithm = mis_parallel()
        table = Table(
            "E7: eta2 = 2 families (all-ones predictions)",
            ["graph", "n", "rounds"],
        )
        worst = 0
        for graph in (clique(8), clique(16), star(16), star(32)):
            result = run(algorithm, graph, all_ones_mis(graph))
            assert MIS.is_solution(graph, result.outputs)
            table.add_row(graph.name, graph.n, result.rounds)
            worst = max(worst, result.rounds)
        return table, worst

    table, worst = once(experiment)
    table.print()
    assert worst <= 8
