"""E30 — Shared-memory store + component sharding (engineering).

The process-pool backend used to serialize a full flat copy of the graph
into every dispatched work item: at n=10^6 the CSR buffers are tens of
megabytes, and a grid of k cells shipped them k times.  With
``ExecutionPolicy(share_graph=True)`` the sweep publishes the topology
into one :class:`~repro.shard.store.SharedCSRStore` segment and every
item crosses the pool as a ~100-byte handle; with ``shard="components"``
a many-component cell additionally splits into per-worker sub-cells that
merge back **bit-identically** (nodes in different components never
exchange messages; every ambient quantity — n, Δ, round budgets, CONGEST
bandwidth — is pinned to the parent graph's value, and per-node
randomness is keyed by ``(seed, node_id)`` alone).

Every workload here asserts the sharded ≡ unsharded identity before
trusting a byte count, then asserts the headline: per-cell graph ship
bytes drop **>= 5x** at the full scale, with an absolute ceiling that
catches any accidental reintroduction of buffer shipping.

Set ``REPRO_E30_N`` to scale the headline run (default 1_000_000; CI
uses a reduced n to keep the job fast — the ratio *grows* with n, since
the handle is O(1) while flat buffers are O(n + m), so the floor holds
a fortiori at full size).  The committed baseline artifact is
``benchmarks/BENCH_e30_sharded.json`` (see docs/PERFORMANCE.md).
"""

import os
import pickle

from repro.core import ExecutionPolicy
from repro.exec import GraphSpec, Sweep
from repro.graphs import path_forest
from repro.shard import SharedCSRStore

#: Headline scale of the ship-bytes measurement (nodes).
N = int(os.environ.get("REPRO_E30_N", "1000000"))

#: Nodes per disjoint path in the many-component instance.
PATH_LEN = 100

#: Ship-bytes reduction floor at the headline scale (flat / shared).
MIN_REDUCTION = 5.0

#: Absolute per-cell ship ceiling with the store active: a handle plus
#: spec overhead, never buffers.  Flat items at N=10^6 are ~25 MB.
SHIP_CEILING_BYTES = 65_536


def _forest(n):
    return path_forest(max(1, n // PATH_LEN), PATH_LEN)


def _sweep(graph, *, shard=None, share=False, seeds=(11, 12)):
    sweep = Sweep(name="e30", base_seed=7)
    policy = ExecutionPolicy(
        schedule="vectorized", shard=shard, share_graph=share
    )
    spec = GraphSpec.literal(graph)
    for seed in seeds:
        sweep.add(
            f"greedy-s{seed}",
            spec,
            "greedy_mis_reference",
            predictions="all_zeros_mis",
            problem="mis",
            seed=seed,
            policy=policy,
        )
    return sweep


def test_e30_identity_fuzz(once):
    """Sharded runs are bit-identical to unsharded runs — across
    schedules, shard counts and backends — before any byte counting."""
    graph = _forest(min(N, 30_000))

    def execute():
        outcomes = []
        for schedule in ("eager", "quiescent", "vectorized"):
            base = Sweep(name="e30", base_seed=7)
            base.add(
                "greedy",
                GraphSpec.literal(graph),
                "greedy_mis_reference",
                predictions="all_zeros_mis",
                problem="mis",
                policy=ExecutionPolicy(schedule=schedule),
            )
            reference = base.run("serial")
            for jobs in (2, 5):
                sharded = Sweep(name="e30", base_seed=7)
                sharded.add(
                    "greedy",
                    GraphSpec.literal(graph),
                    "greedy_mis_reference",
                    predictions="all_zeros_mis",
                    problem="mis",
                    policy=ExecutionPolicy(
                        schedule=schedule, shard="components"
                    ),
                )
                outcomes.append(
                    (schedule, jobs, sharded.run("serial", jobs=jobs), reference)
                )
        return outcomes

    for schedule, jobs, sharded, reference in once(execute):
        assert sharded.equivalent_to(reference), (
            f"sharded ({schedule}, jobs={jobs}) diverged from unsharded"
        )
        assert all(row.valid for row in sharded.rows)


def test_e30_ship_bytes_reduction(once):
    """The tentpole number: per-cell graph ship bytes drop >= 5x at the
    headline scale on the process-pool backend (identity asserted on the
    same run)."""
    graph = _forest(N)

    def execute():
        flat_item = (
            "cell",
            0,
            _sweep(graph).cells[0],
            11,
            False,
            False,
        )
        flat_bytes = len(pickle.dumps(flat_item, pickle.HIGHEST_PROTOCOL))
        reference = _sweep(graph).run("serial")
        shared = _sweep(graph, shard="components", share=True).run(
            "process", jobs=2
        )
        return flat_bytes, reference, shared

    flat_bytes, reference, shared = once(execute)
    assert shared.equivalent_to(reference)
    assert shared.shared_bytes > 0
    for row in shared.rows:
        assert row.ship_bytes is not None
        reduction = flat_bytes / row.ship_bytes
        print(
            f"\nE30 {row.label}: n={graph.n} flat={flat_bytes}B "
            f"shipped={row.ship_bytes}B reduction={reduction:.0f}x "
            f"shards={row.shards}"
        )
        assert reduction >= MIN_REDUCTION, (
            f"per-cell ship bytes {row.ship_bytes} only "
            f"{reduction:.1f}x below the flat {flat_bytes} "
            f"(floor {MIN_REDUCTION:.0f}x)"
        )
        assert row.ship_bytes <= SHIP_CEILING_BYTES, (
            f"per-cell ship bytes {row.ship_bytes} above the "
            f"{SHIP_CEILING_BYTES} ceiling — are buffers crossing the "
            "pool again?"
        )
    telemetry = shared.telemetry()
    assert telemetry["sharded_cells"] == len(shared.rows)
    assert telemetry["shared_bytes"] == shared.shared_bytes


def test_e30_store_publish_overhead(once):
    """Publishing the headline graph into the store is a one-time copy:
    segment bytes equal the CSR payload exactly, and re-publishing is
    free (same handle, one segment)."""
    graph = _forest(min(N, 200_000))

    def execute():
        with SharedCSRStore() as store:
            first = store.publish(graph.csr)
            second = store.publish(graph.csr)
            return first, second, len(store), store.total_bytes

    first, second, segments, total = once(execute)
    assert first == second
    assert segments == 1
    n, nnz = graph.csr.n, len(graph.csr.indices)
    assert total == 8 * (2 * n + 1 + nnz)
