"""E16 — Stale predictions after graph churn (the Section 1.1 scenario).

Paper motivation: "a maximal independent set has been computed on one
network, but now a related network is being used."  We solve each problem
on a network, perturb edges, reuse the old solution as predictions, and
measure rounds vs the amount of churn.  Expected shape: rounds grow with
churn (through the realized η₁) and stay far below the from-scratch cost
for small churn.
"""

from repro.bench import Table
from repro.bench.algorithms import (
    coloring_simple,
    edge_coloring_simple,
    matching_simple,
    mis_simple,
)
from repro.core import run
from repro.errors import eta1
from repro.graphs import connected_erdos_renyi, perturb_edges
from repro.predictions import stale_predictions
from repro.problems import EDGE_COLORING, MATCHING, MIS, VERTEX_COLORING

CASES = [
    ("mis", MIS, mis_simple),
    ("matching", MATCHING, matching_simple),
    ("vertex-coloring", VERTEX_COLORING, coloring_simple),
    ("edge-coloring", EDGE_COLORING, edge_coloring_simple),
]


def test_e16_churn_sweep(once):
    def experiment():
        base_graph = connected_erdos_renyi(60, 0.05, seed=12)
        table = Table(
            "E16: stale predictions after edge churn (ER n=60)",
            ["problem", "churn edges", "eta1", "rounds", "valid"],
        )
        failures = []
        zero_churn_rounds = {}
        for name, problem, factory in CASES:
            algorithm = factory()
            for churn in (0, 2, 5, 10, 20):
                graph = perturb_edges(
                    base_graph, add=churn, remove=churn, seed=churn + 1
                )
                predictions = stale_predictions(problem, base_graph, graph, seed=3)
                result = run(algorithm, graph, predictions, max_rounds=20000)
                error = eta1(graph, predictions, name)
                valid = problem.is_solution(graph, result.outputs)
                table.add_row(name, 2 * churn, error, result.rounds, valid)
                if not valid:
                    failures.append((name, churn))
                if churn == 0:
                    zero_churn_rounds[name] = result.rounds
        return table, (failures, zero_churn_rounds)

    table, (failures, zero_churn_rounds) = once(experiment)
    table.print()
    assert not failures, failures
    # Zero churn = perfect predictions: consistency bounds hold.
    assert zero_churn_rounds["mis"] <= 3
    assert zero_churn_rounds["matching"] <= 2
    assert zero_churn_rounds["vertex-coloring"] <= 2
    assert zero_churn_rounds["edge-coloring"] <= 1
