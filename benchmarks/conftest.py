"""Shared benchmark configuration.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round): the quantities of interest are round *counts*, which are
deterministic per seed, not wall-clock noise.  The printed tables are the
measured counterparts of the paper's claims, collected in EXPERIMENTS.md.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run an experiment callable once under the benchmark fixture."""

    def runner(func):
        return benchmark.pedantic(func, rounds=1, iterations=1)

    return runner
