"""E26 — Quiescence-aware scheduling speedups (engineering, not a paper claim).

The greedy algorithms of Sections 6 and 8 have a moving *frontier*: on a
sorted line only the two or three nodes at the large end do anything in
any given round, while the eager schedule still pays a full O(n) sweep —
Θ(n²) node-rounds for an n-round run.  ``run(..., schedule="quiescent")``
executes only the wake-set, collapsing that to O(n) node-rounds total.

Every workload here runs eager-vs-quiescent, asserts **observational
identity** (same outputs, round count, message count — the quiescent
schedule is an optimisation, not a semantic change) and asserts the
wall-clock speedup floor.  The measured before/after table lives in
EXPERIMENTS.md (E26).

Set ``REPRO_E26_N`` to scale the workloads (default 10000; CI uses a
smaller value to keep the job fast — the speedup grows with n, so the
floor holds a fortiori at full size).
"""

import os
import time

from repro.algorithms.matching import GreedyMatchingAlgorithm
from repro.algorithms.mis import GreedyMISAlgorithm
from repro.core import ExecutionPolicy, run
from repro.graphs import line, wheel_fk
from repro.graphs.identifiers import sorted_path_ids
from repro.problems import MATCHING, MIS

#: Frontier size knob: the line workloads use N nodes, the wheel ~N.
N = int(os.environ.get("REPRO_E26_N", "10000"))

#: Speedup floor asserted at every size; at the default n=10^4 the
#: measured speedups are an order of magnitude above it.
MIN_SPEEDUP = 5.0


def _timed(func):
    start = time.perf_counter()
    result = func()
    return result, time.perf_counter() - start


def _compare(algorithm, graph, **kwargs):
    """Run eager then quiescent; return (eager_s, quiescent_s, result)."""
    eager, eager_s = _timed(lambda: run(algorithm, graph, fast=True, **kwargs))
    quiescent, quiescent_s = _timed(
        lambda: run(algorithm, graph, fast=True,
                    policy=ExecutionPolicy(schedule="quiescent"), **kwargs)
    )
    assert quiescent.outputs == eager.outputs
    assert quiescent.rounds == eager.rounds
    assert quiescent.rounds_executed == eager.rounds_executed
    assert quiescent.message_count == eager.message_count
    return eager_s, quiescent_s, eager


def _report(label, graph, result, eager_s, quiescent_s):
    speedup = eager_s / quiescent_s if quiescent_s else float("inf")
    print(
        f"\nE26 {label}: n={graph.n} rounds={result.rounds} "
        f"eager={eager_s:.2f}s quiescent={quiescent_s:.2f}s "
        f"speedup={speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"{label}: quiescent speedup {speedup:.1f}x below the "
        f"{MIN_SPEEDUP:.0f}x floor (eager {eager_s:.2f}s, "
        f"quiescent {quiescent_s:.2f}s)"
    )


def test_e26_greedy_mis_sorted_line(once):
    """The flagship frontier workload: Θ(n²) → O(n) node-rounds."""
    graph = sorted_path_ids(line(N))

    def execute():
        return _compare(GreedyMISAlgorithm(), graph)

    eager_s, quiescent_s, result = once(execute)
    assert MIS.is_solution(graph, result.outputs)
    assert result.rounds == graph.n
    _report("greedy-mis/sorted-line", graph, result, eager_s, quiescent_s)


def test_e26_greedy_mis_wheel(once):
    """Figure 1's wheel F_k: the frontier walks the subdivided spokes."""
    graph = wheel_fk(max(N // 2, 4))

    def execute():
        return _compare(GreedyMISAlgorithm(), graph)

    eager_s, quiescent_s, result = once(execute)
    assert MIS.is_solution(graph, result.outputs)
    _report("greedy-mis/wheel", graph, result, eager_s, quiescent_s)


def test_e26_greedy_matching_sorted_line(once):
    """Matching's 3-round groups: the frontier pairs off the large end."""
    graph = sorted_path_ids(line(max(N // 3, 4)))

    def execute():
        return _compare(GreedyMatchingAlgorithm(), graph)

    eager_s, quiescent_s, result = once(execute)
    assert MATCHING.is_solution(graph, result.outputs)
    _report("greedy-matching/sorted-line", graph, result, eager_s, quiescent_s)


def test_e26_scheduled_node_rounds(once):
    """The profile's scheduled column quantifies the saved work: the
    quiescent schedule runs O(rounds) node-rounds where the eager one
    runs Θ(n · rounds)."""
    graph = sorted_path_ids(line(min(N, 2000)))

    def execute():
        return run(GreedyMISAlgorithm(), graph, profile=True,
                   policy=ExecutionPolicy(schedule="quiescent"))

    result = once(execute)
    summary = result.profile.summary()
    print(
        f"\nE26 scheduled-vs-active: n={graph.n} "
        f"node_rounds={summary['node_rounds']} "
        f"scheduled={summary['scheduled_rounds']} "
        f"({summary['scheduled_share']:.3%})"
    )
    # Θ(n²) live node-rounds, but only ~2.5 scheduled per round.
    assert summary["scheduled_rounds"] < 4 * result.rounds
    assert summary["node_rounds"] > graph.n * result.rounds / 4
