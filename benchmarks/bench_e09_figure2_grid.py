"""E9 — Figure 2: black/white grid components (Sections 5 and 9.1).

Paper construction: on the 4-block colored grid, η₁ = n while η_bw = 4,
so an algorithm whose rounds track η_bw stays constant as the grid grows.

The second experiment exhibits the *round-count* separation the paper's
symmetry-breaking argument promises: on a line with identifiers sorted
along the path (the Greedy MIS Algorithm's Θ(n) worst case) and a 2-black
/ 2-white block pattern, η₁ = n but η_bw = 2 — the plain greedy grinds
through the line one node per round while U_bw finishes in O(1) rounds.
"""

from repro.bench import Table
from repro.bench.algorithms import mis_blackwhite_simple
from repro.core import run
from repro.errors import eta1, eta_bw
from repro.graphs import grid2d, line, sorted_path_ids
from repro.predictions import grid_blackwhite_predictions
from repro.problems import MIS


def test_e09_grid_pattern_measures(once):
    def experiment():
        table = Table(
            "E9 (Figure 2): grid pattern — eta1 grows with n, eta_bw stays 4",
            ["grid", "n", "eta1", "eta_bw", "U_bw rounds", "valid"],
        )
        rows = []
        for size in (8, 12, 16, 20):
            graph = grid2d(size, size)
            predictions = grid_blackwhite_predictions(graph)
            e1 = eta1(graph, predictions)
            ebw = eta_bw(graph, predictions)
            result = run(mis_blackwhite_simple(), graph, predictions)
            valid = MIS.is_solution(graph, result.outputs)
            table.add_row(f"{size}x{size}", graph.n, e1, ebw, result.rounds, valid)
            rows.append((graph.n, e1, ebw, result.rounds, valid))
        return table, rows

    table, rows = once(experiment)
    table.print()
    bw_rounds = [row[3] for row in rows]
    for n, e1, ebw, rounds, valid in rows:
        assert valid
        assert e1 == n
        assert ebw == 4
    # Constant rounds across grid sizes: the eta_bw story.
    assert max(bw_rounds) == min(bw_rounds)
    assert max(bw_rounds) <= 4 * 4 + 4


def block_pattern_line(n):
    """Sorted-id line with the 2-black/2-white block pattern."""
    graph = sorted_path_ids(line(n))
    predictions = {v: (1 if (v - 1) % 4 < 2 else 0) for v in graph.nodes}
    return graph, predictions


def test_e09_round_separation_on_sorted_lines(once):
    """U vs U_bw behind the *base* algorithm (which defines the black and
    white components and outputs nothing on this pattern): the plain
    greedy crawls the sorted line at Θ(n) while U_bw resolves every
    2-node black/white component in O(1)."""

    def experiment():
        from repro.algorithms.mis import (
            BlackWhiteGreedyMIS,
            GreedyMISAlgorithm,
            MISBaseAlgorithm,
        )
        from repro.core import SimpleTemplate

        plain_algorithm = SimpleTemplate(MISBaseAlgorithm(), GreedyMISAlgorithm())
        bw_algorithm = SimpleTemplate(MISBaseAlgorithm(), BlackWhiteGreedyMIS())
        table = Table(
            "E9: sorted-id line, block pattern — greedy U vs U_bw rounds",
            ["n", "eta1", "eta_bw", "U rounds", "U_bw rounds"],
        )
        rows = []
        for n in (16, 32, 64, 128):
            graph, predictions = block_pattern_line(n)
            e1 = eta1(graph, predictions)
            ebw = eta_bw(graph, predictions)
            plain = run(plain_algorithm, graph, predictions)
            blackwhite = run(bw_algorithm, graph, predictions)
            assert MIS.is_solution(graph, plain.outputs)
            assert MIS.is_solution(graph, blackwhite.outputs)
            table.add_row(n, e1, ebw, plain.rounds, blackwhite.rounds)
            rows.append((n, e1, ebw, plain.rounds, blackwhite.rounds))
        return table, rows

    table, rows = once(experiment)
    table.print()
    bw_rounds = [row[4] for row in rows]
    plain_rounds = [row[3] for row in rows]
    for n, e1, ebw, plain, bw in rows:
        assert ebw <= 2
    # U_bw stays constant while the plain greedy grows linearly.
    assert max(bw_rounds) == min(bw_rounds)
    assert plain_rounds[-1] > 4 * bw_rounds[-1]
    assert plain_rounds[-1] > plain_rounds[0]
