"""E17 — Line lower bounds (Lemmas 4, 5, 13, 14; Theorem 6).

Paper claims: every deterministic measure-uniform algorithm needs
Ω(n) rounds on an n-node line (for MIS, 3-coloring, maximal matching and
edge coloring).  Our measure-uniform algorithms are asymptotically
optimal: on sorted-id lines (their worst case) they take Θ(n) rounds,
between the (n−5)/2-type lower bounds and their own upper bounds.
"""

from repro.algorithms.coloring import PaletteGreedyColoringAlgorithm
from repro.algorithms.edge_coloring import GreedyEdgeColoringAlgorithm
from repro.algorithms.matching import GreedyMatchingAlgorithm
from repro.algorithms.mis import GreedyMISAlgorithm
from repro.bench import Table
from repro.core import run
from repro.graphs import line, sorted_path_ids
from repro.problems import EDGE_COLORING, MATCHING, MIS, VERTEX_COLORING

CASES = [
    ("mis (Lemma 5)", MIS, GreedyMISAlgorithm, lambda n: (n - 5) / 2, lambda n: n),
    (
        "coloring (Lemma 4)",
        VERTEX_COLORING,
        PaletteGreedyColoringAlgorithm,
        lambda n: (n - 3) / 2,
        lambda n: n,
    ),
    (
        "matching (Lemma 13)",
        MATCHING,
        GreedyMatchingAlgorithm,
        lambda n: (n - 3) / 2,
        lambda n: 3 * (n // 2) + 3,
    ),
    (
        "edge coloring (Lemma 14)",
        EDGE_COLORING,
        GreedyEdgeColoringAlgorithm,
        lambda n: (n - 3) / 2,
        lambda n: 2 * n + 3,
    ),
]


def test_e17_sorted_lines_theta_n(once):
    def experiment():
        table = Table(
            "E17: measure-uniform algorithms on sorted-id lines",
            ["problem", "n", "rounds", "lower-bound shape", "upper bound"],
        )
        failures = []
        for name, problem, factory, lower, upper in CASES:
            for n in (16, 32, 64):
                graph = sorted_path_ids(line(n))
                result = run(factory(), graph)
                if problem.verify_solution(graph, result.outputs):
                    failures.append((name, n, "invalid"))
                table.add_row(
                    name, n, result.rounds, f"{lower(n):.0f}", upper(n)
                )
                if not lower(n) <= result.rounds <= upper(n):
                    failures.append((name, n, result.rounds))
        return table, failures

    table, failures = once(experiment)
    table.print()
    assert not failures, failures


def test_e17_linear_growth(once):
    """Round counts double (within slack) when n doubles: the Θ(n) shape."""

    def experiment():
        growth = {}
        for name, problem, factory, lower, upper in CASES:
            small = run(factory(), sorted_path_ids(line(32))).rounds
            large = run(factory(), sorted_path_ids(line(64))).rounds
            growth[name] = (small, large)
        table = Table(
            "E17: doubling n doubles the rounds",
            ["problem", "rounds n=32", "rounds n=64", "ratio"],
        )
        for name, (small, large) in growth.items():
            table.add_row(name, small, large, f"{large / small:.2f}")
        return table, growth

    table, growth = once(experiment)
    table.print()
    for name, (small, large) in growth.items():
        assert 1.5 <= large / small <= 2.6, (name, small, large)
