"""E8 — Figure 1: the wheel F_k and diameter non-monotonicity (Section 5).

Paper construction: F_k has diameter 4, but the subgraph induced by its
rim has diameter ⌊k/2⌋ and *is* an error component (center predicted 1,
everything else 0).  All-ones predictions — strictly worse — produce an
error component of *smaller* diameter (the whole graph, diameter 4).
Hence the maximum error-component diameter is not a monotone measure and
must not be used as an error measure on general graphs.
"""

from repro.bench import Table
from repro.errors import component_diameters, error_components, eta1
from repro.graphs import wheel_fk
from repro.predictions import all_ones_mis


def center_one_predictions(graph, k):
    predictions = {v: 0 for v in graph.nodes}
    predictions[2 * k + 1] = 1
    return predictions


def test_e08_wheel_diameter_non_monotonicity(once):
    def experiment():
        table = Table(
            "E8 (Figure 1): F_k diameters — error-component vs whole graph",
            [
                "k",
                "graph diameter",
                "rim-component diameter (center=1 pred)",
                "component diameter (all-ones pred)",
            ],
        )
        rows = []
        for k in (8, 12, 16, 24, 32):
            graph = wheel_fk(k)
            sparse = center_one_predictions(graph, k)
            rim_diameter = max(
                component_diameters(
                    graph, error_components("mis", graph, sparse)
                )
            )
            dense_diameter = max(
                component_diameters(
                    graph, error_components("mis", graph, all_ones_mis(graph))
                )
            )
            table.add_row(k, graph.diameter(), rim_diameter, dense_diameter)
            rows.append((k, graph.diameter(), rim_diameter, dense_diameter))
        return table, rows

    table, rows = once(experiment)
    table.print()
    for k, graph_diameter, rim_diameter, dense_diameter in rows:
        assert graph_diameter == 4
        assert rim_diameter == k // 2
        assert dense_diameter == 4
        # Non-monotonicity: worse predictions, smaller diameter (strict
        # once the rim is long enough).
        if k > 8:
            assert dense_diameter < rim_diameter


def test_e08_eta1_is_monotone_on_the_same_instances(once):
    """Contrast: η₁ (built from the monotone μ₁) behaves correctly —
    all-ones predictions never score lower than the sparse error."""

    def experiment():
        table = Table(
            "E8: eta1 on the same F_k instances (monotone measure)",
            ["k", "eta1 (center=1 pred)", "eta1 (all-ones pred)"],
        )
        rows = []
        for k in (8, 16, 32):
            graph = wheel_fk(k)
            sparse = eta1(graph, center_one_predictions(graph, k))
            dense = eta1(graph, all_ones_mis(graph))
            table.add_row(k, sparse, dense)
            rows.append((sparse, dense))
        return table, rows

    table, rows = once(experiment)
    table.print()
    for sparse, dense in rows:
        assert dense >= sparse
