"""E2/E3 — Greedy MIS round bounds (Lemmas 1 and 2).

Paper claims: the Greedy MIS Algorithm finishes within
``max μ₁(S)`` rounds (Lemma 1) and within ``max μ₂(S) + 1`` rounds
(Lemma 2) over the components S; the worst case is matched on a line
with sorted identifiers (Lemma 5's Ω(n) lower bound).
"""

from repro.algorithms.mis import GreedyMISAlgorithm
from repro.bench import Table, standard_graph_suite
from repro.core import run
from repro.errors import mu1, mu2
from repro.graphs import clique, line, sorted_path_ids, star
from repro.problems import MIS


def test_e02_lemma1_mu1_bound(once):
    def experiment():
        table = Table(
            "E2 (Lemma 1): Greedy MIS rounds vs mu1 bound",
            ["graph", "rounds", "max mu1(S)", "within bound"],
        )
        failures = []
        for graph in standard_graph_suite():
            result = run(GreedyMISAlgorithm(), graph)
            bound = max(mu1(graph, c) for c in graph.components())
            ok = result.rounds <= bound and MIS.is_solution(graph, result.outputs)
            table.add_row(graph.name, result.rounds, bound, ok)
            if not ok:
                failures.append(graph.name)
        return table, failures

    table, failures = once(experiment)
    table.print()
    assert not failures


def test_e03_lemma2_mu2_bound(once):
    def experiment():
        table = Table(
            "E3 (Lemma 2): Greedy MIS rounds vs mu2+1 bound",
            ["graph", "rounds", "max mu2(S)+1", "within bound"],
        )
        failures = []
        graphs = list(standard_graph_suite()) + [clique(20), star(24)]
        for graph in graphs:
            result = run(GreedyMISAlgorithm(), graph)
            bound = max(mu2(graph, c) for c in graph.components()) + 1
            ok = result.rounds <= bound
            table.add_row(graph.name, result.rounds, bound, ok)
            if not ok:
                failures.append(graph.name)
        return table, failures

    table, failures = once(experiment)
    table.print()
    assert not failures


def test_e02_worst_case_sorted_line(once):
    """The matching lower-bound witness: sorted ids force ~n rounds."""

    def experiment():
        table = Table(
            "E2 witness: sorted-id lines realize the Omega(n) lower bound",
            ["n", "rounds", "(n-5)/2 lower bound shape"],
        )
        rows = []
        for n in (8, 16, 32, 64):
            graph = sorted_path_ids(line(n))
            result = run(GreedyMISAlgorithm(), graph)
            rows.append((n, result.rounds))
            table.add_row(n, result.rounds, (n - 5) // 2)
        return table, rows

    table, rows = once(experiment)
    table.print()
    for n, rounds in rows:
        assert rounds >= (n - 5) / 2
        assert rounds <= n
